"""Pattern-grouped sparse convolution — the software view of PCNN compute.

The regularity PCNN enforces (equal-length non-zero sequences, few shared
patterns per layer) lets a software kernel skip zeros with *structured*
access: kernels sharing an SPM code read the same ``n`` kernel positions,
so the layer decomposes into |P_l| grouped contractions over ``n`` columns
each — exactly ``n/9`` of the dense multiplies, with no per-weight index
decoding.

An honest note the ``bench_software_sparse_conv`` benchmark quantifies: on
commodity CPUs the dense path runs on highly tuned BLAS GEMM, so the 9/n
*multiply* reduction does not translate into wall-clock wins at these
sizes — which is precisely the paper's argument for building a
pattern-aware accelerator rather than relying on general-purpose hardware
(Sec. I). The cycle-level win is measured by :mod:`repro.arch.simulator`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.functional import im2col
from .patterns import pattern_positions
from .spm import EncodedLayer

__all__ = ["pattern_sparse_conv2d", "sparse_conv_flops", "dense_conv_flops"]


def sparse_conv_flops(encoded: EncodedLayer, output_hw: Tuple[int, int]) -> int:
    """Multiplies executed by the pattern-sparse convolution."""
    oh, ow = output_hw
    return encoded.num_kernels * encoded.values.shape[1] * oh * ow


def dense_conv_flops(encoded: EncodedLayer, output_hw: Tuple[int, int]) -> int:
    """Multiplies of the equivalent dense convolution."""
    oh, ow = output_hw
    k2 = encoded.shape[-1] * encoded.shape[-2]
    return encoded.num_kernels * k2 * oh * ow


def pattern_sparse_conv2d(
    x: np.ndarray,
    encoded: EncodedLayer,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Convolution computed directly from SPM storage.

    Equivalent to ``conv2d(x, decode_layer(encoded))`` but never
    materialises the zeros: kernels are grouped by SPM code, each group
    gathers only its pattern's ``n`` im2col columns, and per-filter
    partial sums are segment-reduced.
    """
    c_out, c_in, kh, kw = encoded.shape
    batch = x.shape[0]
    if x.shape[1] != c_in:
        raise ValueError(f"channel mismatch: input {x.shape[1]} vs weights {c_in}")

    cols, (oh, ow) = im2col(x, (kh, kw), stride, padding)  # (W, C*k2)
    num_windows = cols.shape[0]
    k2 = kh * kw
    out = np.zeros((num_windows, c_out))

    codes = encoded.codes
    values = encoded.values
    # Kernel index k corresponds to (filter f, channel c) = divmod(k, c_in).
    kernel_filters, kernel_channels = np.divmod(np.arange(len(codes)), c_in)

    for code in np.unique(codes):
        positions = np.array(
            pattern_positions(encoded.codebook.pattern(int(code)), kh), dtype=np.int64
        )
        members = np.flatnonzero(codes == code)
        # Sort group members by filter so per-filter sums are contiguous.
        order = members[np.argsort(kernel_filters[members], kind="stable")]
        filters_sorted = kernel_filters[order]
        col_idx = kernel_channels[order][:, None] * k2 + positions[None, :]
        gathered = cols[:, col_idx]  # (W, m, n)
        contributions = np.einsum("wmn,mn->wm", gathered, values[order])
        # Segment-sum runs of equal filter index.
        boundaries = np.flatnonzero(
            np.concatenate(([True], filters_sorted[1:] != filters_sorted[:-1]))
        )
        sums = np.add.reduceat(contributions, boundaries, axis=1)
        out[:, filters_sorted[boundaries]] += sums

    if bias is not None:
        out = out + bias
    return out.reshape(batch, oh, ow, c_out).transpose(0, 3, 1, 2)
