"""Pattern-grouped sparse convolution — the software view of PCNN compute.

The regularity PCNN enforces (equal-length non-zero sequences, few shared
patterns per layer) lets a software kernel skip zeros with *structured*
access: kernels sharing an SPM code read the same ``n`` kernel positions,
so the layer decomposes into |P_l| grouped contractions over ``n`` columns
each — exactly ``n/9`` of the dense multiplies, with no per-weight index
decoding.

Execution lives in :mod:`repro.runtime`: the ``pattern`` backend turns
the grouped structure into a single BLAS GEMM against a cached grouped
weight matrix (an order of magnitude over a per-pattern gather loop —
``bench_software_sparse_conv`` quantifies it). An honest note remains: at
CIFAR-era sizes dense BLAS GEMM is still roughly on par wall-clock, which
is precisely the paper's argument for building a pattern-aware
accelerator rather than relying on general-purpose hardware (Sec. I).
The cycle-level win is measured by :mod:`repro.arch.simulator`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..runtime.engine import dispatch
from .spm import EncodedLayer

__all__ = ["pattern_sparse_conv2d", "sparse_conv_flops", "dense_conv_flops"]


def sparse_conv_flops(encoded: EncodedLayer, output_hw: Tuple[int, int]) -> int:
    """Multiplies executed by the pattern-sparse convolution."""
    oh, ow = output_hw
    return encoded.num_kernels * encoded.values.shape[1] * oh * ow


def dense_conv_flops(encoded: EncodedLayer, output_hw: Tuple[int, int]) -> int:
    """Multiplies of the equivalent dense convolution."""
    oh, ow = output_hw
    k2 = encoded.shape[-1] * encoded.shape[-2]
    return encoded.num_kernels * k2 * oh * ow


def pattern_sparse_conv2d(
    x: np.ndarray,
    encoded: EncodedLayer,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Convolution computed directly from SPM storage.

    Equivalent to ``conv2d(x, decode_layer(encoded))`` but never
    materialises the zeros. Thin wrapper over
    :func:`repro.runtime.dispatch` with the ``pattern`` backend: the
    layer's cached gather plan maps each stored value to its im2col
    column, one fused gather + contraction computes every kernel's
    partial sum, and per-filter segment reduction assembles the output.
    The output dtype follows ``np.result_type(x, encoded.values)`` so
    float32 pipelines stay float32 end-to-end.
    """
    return dispatch(
        x,
        encoded=encoded,
        bias=bias,
        stride=stride,
        padding=padding,
        backend="pattern",
    )
