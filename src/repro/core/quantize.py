"""Weight quantization for the 8-bit hardware path (Sec. IV-E).

The pattern-aware architecture stores non-zero weights at 8-bit precision
("...with 8-bit quantization for common cases"). This module provides the
symmetric linear quantizer used when lowering a PCNN-pruned model to the
accelerator (see :mod:`repro.core.deploy`), per-tensor and per-kernel
granularities, and the compression accounting at reduced precision —
where the SPM index is a relatively larger share of storage, which is why
the paper sizes pattern budgets to 16 patterns (4 bits) on chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize_symmetric",
    "dequantize",
    "quantize_per_kernel",
    "quantization_error",
]


@dataclass
class QuantizedTensor:
    """Symmetric linear quantization of an array.

    ``values = codes * scale`` with integer ``codes`` in
    ``[-2^(bits-1)+1, 2^(bits-1)-1]``. ``scale`` may be scalar (per-tensor)
    or broadcastable (per-kernel rows).
    """

    codes: np.ndarray
    scale: np.ndarray
    bits: int

    @property
    def storage_bits(self) -> int:
        """Payload bits (scales excluded — amortised over many weights)."""
        return self.codes.size * self.bits

    def dequantize(self) -> np.ndarray:
        return self.codes.astype(np.float64) * self.scale


def _qmax(bits: int) -> int:
    if bits < 2:
        raise ValueError("need at least 2 bits for signed quantization")
    return 2 ** (bits - 1) - 1


def quantize_symmetric(values: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Per-tensor symmetric quantization to ``bits`` bits."""
    values = np.asarray(values, dtype=np.float64)
    qmax = _qmax(bits)
    peak = np.abs(values).max() if values.size else 0.0
    scale = np.asarray(peak / qmax if peak > 0 else 1.0)
    codes = np.clip(np.round(values / scale), -qmax, qmax).astype(np.int32)
    return QuantizedTensor(codes=codes, scale=scale, bits=bits)


def quantize_per_kernel(values: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Per-row (kernel) symmetric quantization of a ``(kernels, n)`` array.

    Matches how the accelerator would scale each kernel's non-zero
    sequence independently; improves SQNR when kernel magnitudes vary.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("expected (kernels, n)")
    qmax = _qmax(bits)
    peaks = np.abs(values).max(axis=1, keepdims=True)
    scale = np.where(peaks > 0, peaks / qmax, 1.0)
    codes = np.clip(np.round(values / scale), -qmax, qmax).astype(np.int32)
    return QuantizedTensor(codes=codes, scale=scale, bits=bits)


def dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Recover float values from a :class:`QuantizedTensor`."""
    return quantized.dequantize()


def quantization_error(values: np.ndarray, quantized: QuantizedTensor) -> float:
    """Relative L2 error of the quantization (0 = lossless)."""
    values = np.asarray(values, dtype=np.float64)
    norm = np.linalg.norm(values)
    if norm == 0:
        return 0.0
    return float(np.linalg.norm(values - quantized.dequantize()) / norm)
