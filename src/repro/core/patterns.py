"""Sparsity patterns — the fundamental object of PCNN (Sec. II-A).

A *pattern* is the set of non-zero positions inside one convolution kernel.
For a ``k x k`` kernel we represent a pattern as an integer bitmask of
``k*k`` bits where bit ``p`` corresponds to kernel position ``p = row*k +
col`` (row-major — the same ordering as the weight sequence in Fig. 1 and
the im2col columns of :mod:`repro.nn.functional`).

The full candidate set ``F_n`` of patterns with exactly ``n`` non-zeros has
``C(k*k, n)`` members; for 3x3 kernels that peaks at ``C(9,4) = 126``
(the paper's Fig. 2) and sums to ``2^9 = 512`` over all n (Sec. II-A).
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "full_pattern_count",
    "pattern_count",
    "enumerate_patterns",
    "popcount",
    "pattern_to_mask",
    "mask_to_pattern",
    "pattern_positions",
    "positions_to_pattern",
    "patterns_to_bit_matrix",
    "best_pattern_indices",
    "pattern_energy",
    "kernel_to_pattern",
    "format_pattern",
]


def full_pattern_count(kernel_size: int = 3) -> int:
    """Total number of patterns of any sparsity: ``2^(k*k)`` (512 for 3x3)."""
    return 2 ** (kernel_size * kernel_size)


def pattern_count(n: int, kernel_size: int = 3) -> int:
    """``|F_n| = C(k*k, n)`` — candidate patterns with n non-zeros."""
    return comb(kernel_size * kernel_size, n)


def enumerate_patterns(n: int, kernel_size: int = 3) -> np.ndarray:
    """All bitmasks with exactly ``n`` bits set, ascending, as int64 array.

    >>> enumerate_patterns(1).tolist()
    [1, 2, 4, 8, 16, 32, 64, 128, 256]
    """
    positions = kernel_size * kernel_size
    if not 0 <= n <= positions:
        raise ValueError(f"n must be in [0, {positions}], got {n}")
    masks = [
        sum(1 << p for p in combo) for combo in combinations(range(positions), n)
    ]
    return np.array(sorted(masks), dtype=np.int64)


def popcount(patterns: np.ndarray) -> np.ndarray:
    """Number of set bits of each pattern (vectorised)."""
    patterns = np.asarray(patterns, dtype=np.int64)
    counts = np.zeros_like(patterns)
    work = patterns.copy()
    while np.any(work):
        counts += work & 1
        work >>= 1
    return counts


def pattern_to_mask(pattern: int, kernel_size: int = 3) -> np.ndarray:
    """Expand a bitmask into a {0,1} ``(k, k)`` array."""
    positions = kernel_size * kernel_size
    bits = (pattern >> np.arange(positions)) & 1
    return bits.reshape(kernel_size, kernel_size).astype(np.float64)


def mask_to_pattern(mask: np.ndarray) -> int:
    """Inverse of :func:`pattern_to_mask`: non-zero entries -> bitmask."""
    flat = np.asarray(mask).reshape(-1)
    return int(sum(1 << p for p in np.flatnonzero(flat != 0)))


def pattern_positions(pattern: int, kernel_size: int = 3) -> List[int]:
    """Sorted list of set bit positions (kernel positions row-major)."""
    positions = kernel_size * kernel_size
    return [p for p in range(positions) if (pattern >> p) & 1]


def positions_to_pattern(positions: Sequence[int]) -> int:
    """Build a bitmask from an iterable of kernel positions."""
    return int(sum(1 << p for p in set(positions)))


def patterns_to_bit_matrix(patterns: np.ndarray, kernel_size: int = 3) -> np.ndarray:
    """Expand an array of M bitmasks to an ``(M, k*k)`` {0,1} float matrix."""
    patterns = np.asarray(patterns, dtype=np.int64)
    positions = kernel_size * kernel_size
    return ((patterns[:, None] >> np.arange(positions)[None, :]) & 1).astype(np.float64)


def pattern_energy(kernels: np.ndarray, patterns: np.ndarray, kernel_size: int = 3) -> np.ndarray:
    """Retained squared magnitude of each kernel under each pattern.

    Parameters
    ----------
    kernels:
        ``(N, k*k)`` flattened kernels.
    patterns:
        ``(M,)`` bitmasks.

    Returns
    -------
    ``(N, M)`` array where entry (i, j) is ``sum(kernels[i]^2 * bits_j)``.
    Maximising retained energy is equivalent to minimising the projection
    residual ``||w - Pi_P(w)||^2`` in Eq. (1).
    """
    bits = patterns_to_bit_matrix(patterns, kernel_size)
    return (np.asarray(kernels, dtype=np.float64) ** 2) @ bits.T


def best_pattern_indices(
    kernels: np.ndarray, patterns: np.ndarray, kernel_size: int = 3
) -> np.ndarray:
    """Index of the nearest (max retained energy) pattern for each kernel."""
    return pattern_energy(kernels, patterns, kernel_size).argmax(axis=1)


def kernel_to_pattern(kernel: np.ndarray, n: int) -> int:
    """Pattern induced by the top-``n`` absolute values of one kernel.

    Ties are broken by position order (lower position wins), which keeps
    the mapping deterministic.
    """
    flat = np.abs(np.asarray(kernel, dtype=np.float64).reshape(-1))
    if n <= 0:
        return 0
    if n >= flat.size:
        return (1 << flat.size) - 1
    # argsort is stable; sort by (-|w|, position).
    order = np.argsort(-flat, kind="stable")
    return positions_to_pattern(order[:n].tolist())


def format_pattern(pattern: int, kernel_size: int = 3) -> str:
    """Pretty multi-line rendering of a pattern, for logs and figures.

    >>> print(format_pattern(0b000000111))
    X X X
    . . .
    . . .
    """
    mask = pattern_to_mask(pattern, kernel_size)
    return "\n".join(
        " ".join("X" if cell else "." for cell in row) for row in mask
    )
