"""KP-based pattern distillation (Sec. II-B, Algorithm 1).

Choosing ``V_l`` patterns from the candidate set ``F_n`` so that projecting
every kernel of layer ``l`` onto the chosen set loses the least energy is a
multiple knapsack problem with unit capacities (MKP-1). The paper solves it
with a greedy frequency heuristic (Algorithm 1): match each kernel to its
nearest candidate pattern, count pattern popularity, keep the ``V_l`` most
popular.

This module implements Algorithm 1 faithfully plus two reference selectors
used by the ablation bench (`bench_ablation_distillation`):

- ``energy`` — rank patterns by total retained energy instead of frequency;
- ``random`` — uniformly random selection (lower bound).

and an exhaustive optimal selector for small instances, used by tests to
measure the greedy gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .patterns import (
    best_pattern_indices,
    enumerate_patterns,
    pattern_energy,
)
from .projection import projection_error

__all__ = [
    "DistillationResult",
    "pattern_frequencies",
    "distill_patterns",
    "distill_layer",
    "exhaustive_optimal_patterns",
    "anneal_patterns",
]


@dataclass
class DistillationResult:
    """Outcome of pattern distillation for one layer.

    Attributes
    ----------
    patterns:
        Selected pattern bitmasks, most popular first (``P_l``).
    frequencies:
        Kernel count matched to each selected pattern during selection.
    candidate_count:
        ``|F_n|`` of the candidate set.
    residual:
        Projection error of the layer weights onto the selected set.
    """

    patterns: np.ndarray
    frequencies: np.ndarray
    candidate_count: int
    residual: float


def pattern_frequencies(
    weight: np.ndarray, candidates: np.ndarray
) -> np.ndarray:
    """Histogram of nearest-candidate matches over all kernels (Fig. 2).

    Entry ``i`` is the number of kernels whose nearest pattern (max
    retained energy) is ``candidates[i]`` — the distribution whose heavy
    head ("dominant" patterns) motivates distillation.
    """
    k = weight.shape[-1]
    kernels = weight.reshape(-1, k * k)
    indices = best_pattern_indices(kernels, candidates, k)
    return np.bincount(indices, minlength=len(candidates))


def distill_patterns(
    weight: np.ndarray,
    n: int,
    num_patterns: int,
    method: str = "frequency",
    candidates: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
) -> DistillationResult:
    """Select ``num_patterns`` patterns of sparsity ``n`` for one layer.

    Parameters
    ----------
    weight:
        Layer weight ``(C_out, C_in, k, k)``.
    n:
        Non-zeros per kernel (kernel sparsity ``s_l = n / k^2``).
    num_patterns:
        ``V_l`` — the knapsack budget. Clipped to ``|F_n|``.
    method:
        ``"frequency"`` (Algorithm 1), ``"energy"``, or ``"random"``.
    candidates:
        Candidate set override; defaults to the full ``F_n``.
    """
    k = weight.shape[-1]
    if candidates is None:
        candidates = enumerate_patterns(n, k)
    candidates = np.asarray(candidates, dtype=np.int64)
    budget = min(num_patterns, len(candidates))
    kernels = weight.reshape(-1, k * k)

    if method == "frequency":
        counts = pattern_frequencies(weight, candidates)
        # Stable sort: popularity descending, pattern value ascending.
        order = np.lexsort((candidates, -counts))[:budget]
    elif method == "energy":
        energy = pattern_energy(kernels, candidates, k).sum(axis=0)
        counts = pattern_frequencies(weight, candidates)
        order = np.lexsort((candidates, -energy))[:budget]
    elif method == "random":
        rng = rng or np.random.default_rng()
        counts = pattern_frequencies(weight, candidates)
        order = rng.choice(len(candidates), size=budget, replace=False)
    else:
        raise ValueError(f"unknown distillation method {method!r}")

    selected = candidates[order]
    return DistillationResult(
        patterns=selected,
        frequencies=counts[order],
        candidate_count=len(candidates),
        residual=projection_error(weight, selected),
    )


def distill_layer(
    weight: np.ndarray, n: int, num_patterns: int
) -> DistillationResult:
    """Algorithm 1 for one layer: greedy frequency distillation."""
    return distill_patterns(weight, n, num_patterns, method="frequency")


def anneal_patterns(
    weight: np.ndarray,
    n: int,
    num_patterns: int,
    candidates: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
    iterations: int = 2000,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
) -> DistillationResult:
    """Simulated-annealing MKP-1 solver (extension to Algorithm 1).

    State: a size-``V_l`` subset of the candidate set. Move: swap one
    selected pattern for one unselected. Objective: total retained energy
    (equivalently, minimise the Eq. (1) residual). Initialised from the
    greedy Algorithm 1 solution, so it never does worse; the ablation
    bench quantifies how much head-room greedy leaves (typically < 2% of
    kernel energy).
    """
    k = weight.shape[-1]
    if candidates is None:
        candidates = enumerate_patterns(n, k)
    candidates = np.asarray(candidates, dtype=np.int64)
    rng = rng or np.random.default_rng(0)
    budget = min(num_patterns, len(candidates))
    kernels = weight.reshape(-1, k * k)
    energies = pattern_energy(kernels, candidates, k)  # (N, M)
    total_energy = float((kernels**2).sum())

    greedy = distill_patterns(weight, n, budget, method="frequency", candidates=candidates)
    candidate_index = {int(p): i for i, p in enumerate(candidates)}
    selected = np.array([candidate_index[int(p)] for p in greedy.patterns], dtype=np.int64)

    def retained(subset: np.ndarray) -> float:
        return float(energies[:, subset].max(axis=1).sum())

    current = selected.copy()
    current_value = retained(current)
    best = current.copy()
    best_value = current_value
    temperature = initial_temperature * max(current_value, 1.0)

    unselected = np.setdiff1d(np.arange(len(candidates)), current)
    for _ in range(iterations):
        if len(unselected) == 0:
            break
        out_pos = rng.integers(len(current))
        in_pos = rng.integers(len(unselected))
        proposal = current.copy()
        removed = proposal[out_pos]
        proposal[out_pos] = unselected[in_pos]
        value = retained(proposal)
        accept = value > current_value or rng.random() < np.exp(
            (value - current_value) / max(temperature, 1e-12)
        )
        if accept:
            current = proposal
            current_value = value
            unselected[in_pos] = removed
            if value > best_value:
                best = current.copy()
                best_value = value
        temperature *= cooling

    chosen = np.sort(candidates[best])
    counts = pattern_frequencies(weight, candidates)
    order = np.argsort(-counts[np.searchsorted(candidates, chosen)])
    chosen = chosen[order]
    return DistillationResult(
        patterns=chosen,
        frequencies=counts[np.searchsorted(candidates, chosen)],
        candidate_count=len(candidates),
        residual=total_energy - best_value,
    )


def exhaustive_optimal_patterns(
    weight: np.ndarray,
    n: int,
    num_patterns: int,
    candidates: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, float]:
    """Optimal MKP-1 solution by exhaustive subset search (tests only).

    Feasible only for tiny candidate sets / budgets; used to quantify the
    greedy gap of Algorithm 1.
    """
    k = weight.shape[-1]
    if candidates is None:
        candidates = enumerate_patterns(n, k)
    kernels = weight.reshape(-1, k * k)
    energies = pattern_energy(kernels, candidates, k)  # (N, M)
    best_subset: Optional[Tuple[int, ...]] = None
    best_retained = -np.inf
    for subset in combinations(range(len(candidates)), min(num_patterns, len(candidates))):
        retained = energies[:, subset].max(axis=1).sum()
        if retained > best_retained:
            best_retained = retained
            best_subset = subset
    assert best_subset is not None
    selected = np.asarray(candidates, dtype=np.int64)[list(best_subset)]
    total = float((kernels**2).sum())
    return selected, total - float(best_retained)
