"""PCNNPruner — the end-to-end PCNN pruning flow (Sec. II).

Pipeline (paper Sec. IV-A): start from a pre-trained model, run KP-based
pattern distillation per layer (Algorithm 1), project weights onto the
distilled patterns (hard prune), install masks so masked retraining / ADMM
keeps pruned positions at zero, and encode the result with SPM.

The pruner targets every 3x3 convolution the model exposes; 1x1 layers are
skipped (Sec. IV-B: "too accuracy-sensitive").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..models.flops import ModelProfile
from .compression import CompressionReport, pcnn_compression
from .config import PCNNConfig
from .distillation import DistillationResult, distill_patterns
from .masks import kernel_nonzeros, pattern_mask_for_weight
from .projection import project_to_patterns
from .spm import EncodedLayer, SPMCodebook, encode_layer

__all__ = ["PrunedLayerInfo", "PCNNPruner"]


@dataclass
class PrunedLayerInfo:
    """Everything the pruner decided for one layer."""

    name: str
    n: int
    patterns: np.ndarray
    distillation: DistillationResult
    mask: np.ndarray

    @property
    def sparsity(self) -> float:
        """Zero fraction of the layer (``1 - n / k^2``)."""
        return 1.0 - float(np.count_nonzero(self.mask)) / self.mask.size


class PCNNPruner:
    """Applies PCNN pruning to a model in place.

    Parameters
    ----------
    model:
        Any model exposing conv layers via ``named_modules`` (VGG16,
        ResNet18, PatternNet, or a plain Sequential).
    config:
        Per-layer :class:`PCNNConfig`; must cover the model's 3x3 convs in
        network order.
    method:
        Distillation selector passed to
        :func:`repro.core.distillation.distill_patterns`.
    """

    def __init__(
        self,
        model: nn.Module,
        config: PCNNConfig,
        method: str = "frequency",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.method = method
        self._rng = rng
        self.layers = self._find_prunable_layers()
        config.validate_for(len(self.layers))
        self.info: Dict[str, PrunedLayerInfo] = {}

    def _find_prunable_layers(self) -> List[Tuple[str, nn.Conv2d]]:
        return [
            (name, module)
            for name, module in self.model.named_modules()
            if isinstance(module, nn.Conv2d) and module.kernel_size == self.config.kernel_size
        ]

    # ------------------------------------------------------------------
    def distill(self) -> Dict[str, DistillationResult]:
        """Run Algorithm 1 on every prunable layer; returns per-layer results."""
        results = {}
        for (name, module), layer_cfg in zip(self.layers, self.config):
            results[name] = distill_patterns(
                module.weight.data,
                n=layer_cfg.n,
                num_patterns=layer_cfg.num_patterns,
                method=self.method,
                rng=self._rng,
            )
        return results

    def apply(self) -> Dict[str, PrunedLayerInfo]:
        """Distill, hard-prune and install masks. Returns per-layer info."""
        distilled = self.distill()
        self.info = {}
        for (name, module), layer_cfg in zip(self.layers, self.config):
            result = distilled[name]
            projected = project_to_patterns(module.weight.data, result.patterns)
            module.weight.data[...] = projected
            mask = pattern_mask_for_weight(projected, result.patterns)
            module.set_weight_mask(mask)
            self.info[name] = PrunedLayerInfo(
                name=name,
                n=layer_cfg.n,
                patterns=result.patterns,
                distillation=result,
                mask=mask,
            )
        return self.info

    # ------------------------------------------------------------------
    def verify_regularity(self) -> None:
        """Assert the PCNN invariant: equal non-zeros in every kernel of a layer.

        (Kernels whose top-n weights tie at zero may hold fewer literal
        non-zeros, but the *mask* — what the hardware stores — is exact.)
        """
        for (name, module), layer_cfg in zip(self.layers, self.config):
            if module.weight_mask is None:
                raise RuntimeError(f"layer {name} has no mask; call apply() first")
            counts = kernel_nonzeros(module.weight_mask)
            if not np.all(counts == layer_cfg.n):
                raise AssertionError(
                    f"layer {name}: kernel non-zeros {np.unique(counts)} != {layer_cfg.n}"
                )

    def encode(self) -> Dict[str, EncodedLayer]:
        """SPM-encode every pruned layer (requires :meth:`apply` first)."""
        if not self.info:
            raise RuntimeError("call apply() before encode()")
        encoded = {}
        for name, module in self.layers:
            info = self.info[name]
            codebook = SPMCodebook(info.patterns, kernel_size=self.config.kernel_size)
            encoded[name] = encode_layer(module.effective_weight(), codebook)
        return encoded

    def attach_encodings(self) -> Dict[str, EncodedLayer]:
        """SPM-encode every pruned layer and attach the encodings.

        After this, the runtime engine's no-grad fast path executes each
        pruned conv straight from SPM storage through the pattern-sparse
        backend (see :meth:`repro.nn.Conv2d.attach_encoding`). Returns
        the encodings, keyed by layer name.
        """
        encoded = self.encode()
        for name, module in self.layers:
            module.attach_encoding(encoded[name])
        return encoded

    def compression_report(
        self, profile: ModelProfile, setting: Optional[str] = None
    ) -> CompressionReport:
        """Paper-style compression accounting for this pruner's config."""
        return pcnn_compression(profile, self.config, setting=setting)
