"""Per-layer PCNN pruning configuration.

The paper uses both *unified* settings (one ``n`` for all layers) and
*various* settings written as dash-separated strings, e.g. the Table I
footnote ``2-1-1-1-1-1-1-1-1-1-1-1-1`` for VGG-16 (13 conv layers) "with 32
patterns in n = 2 layers and 8 patterns in n = 1 layers". The default
pattern budgets follow Sec. IV-B: "We set n as 1, 2, 3, and 4 in all
layers with at most 8, 32, 32, and 32 patterns respectively."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .patterns import pattern_count

__all__ = ["DEFAULT_PATTERN_BUDGET", "LayerConfig", "PCNNConfig"]

# Paper defaults (Sec. IV-B): at most 8 patterns for n=1, 32 otherwise.
DEFAULT_PATTERN_BUDGET: Dict[int, int] = {1: 8, 2: 32, 3: 32, 4: 32, 5: 32, 6: 32}


def _default_budget(n: int, kernel_size: int = 3) -> int:
    return min(DEFAULT_PATTERN_BUDGET.get(n, 32), pattern_count(n, kernel_size))


@dataclass(frozen=True)
class LayerConfig:
    """Pruning setting for one convolution layer.

    ``n`` non-zeros per kernel and at most ``num_patterns`` distilled
    patterns (``V_l``).
    """

    n: int
    num_patterns: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.num_patterns < 1:
            raise ValueError(f"num_patterns must be >= 1, got {self.num_patterns}")


@dataclass
class PCNNConfig:
    """Pruning configuration for a whole network.

    Attributes
    ----------
    layers:
        One :class:`LayerConfig` per *prunable* (3x3) conv layer, in
        network order.
    kernel_size:
        Kernel size the patterns live on.
    """

    layers: List[LayerConfig]
    kernel_size: int = 3

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> LayerConfig:
        return self.layers[index]

    def __iter__(self):
        return iter(self.layers)

    @property
    def ns(self) -> List[int]:
        return [layer.n for layer in self.layers]

    @classmethod
    def uniform(
        cls,
        n: int,
        num_layers: int,
        num_patterns: Optional[int] = None,
        kernel_size: int = 3,
    ) -> "PCNNConfig":
        """Same ``n`` (and pattern budget) for every layer — the unified
        settings of Tables I-III."""
        budget = num_patterns if num_patterns is not None else _default_budget(n, kernel_size)
        budget = min(budget, pattern_count(n, kernel_size))
        return cls([LayerConfig(n, budget)] * num_layers, kernel_size=kernel_size)

    @classmethod
    def from_string(
        cls,
        spec: str,
        num_patterns: Optional[Dict[int, int]] = None,
        kernel_size: int = 3,
    ) -> "PCNNConfig":
        """Parse a dash-separated per-layer ``n`` string.

        >>> cfg = PCNNConfig.from_string("2-1-1")
        >>> cfg.ns
        [2, 1, 1]
        >>> [l.num_patterns for l in cfg]   # paper budgets: 32 / 8 / 8
        [32, 8, 8]
        """
        budgets = dict(DEFAULT_PATTERN_BUDGET)
        if num_patterns:
            budgets.update(num_patterns)
        layers = []
        for token in spec.split("-"):
            n = int(token)
            budget = min(budgets.get(n, 32), pattern_count(n, kernel_size))
            layers.append(LayerConfig(n, budget))
        return cls(layers, kernel_size=kernel_size)

    def validate_for(self, num_layers: int) -> None:
        """Raise if the config does not cover exactly ``num_layers``."""
        if len(self.layers) != num_layers:
            raise ValueError(
                f"config has {len(self.layers)} layer entries but the model "
                f"has {num_layers} prunable conv layers"
            )

    def describe(self) -> str:
        """Human-readable summary, e.g. ``n=2-1-1 |P|=32-8-8``."""
        ns = "-".join(str(layer.n) for layer in self.layers)
        ps = "-".join(str(layer.num_patterns) for layer in self.layers)
        return f"n={ns} |P|={ps}"
