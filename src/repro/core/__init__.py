"""repro.core — the PCNN algorithm (the paper's primary contribution).

Patterns and SPM encoding (Sec. II-A), KP-based pattern distillation
(Sec. II-B, Algorithm 1), the end-to-end pruning flow, ADMM fine-tuning,
compression accounting for Tables I-IV, orthogonal kernel/channel pruning
(Sec. IV-D) and runnable baselines.
"""

from .admm import ADMMFineTuner, ADMMState
from .baselines import (
    filter_prune_l1,
    magnitude_prune_irregular,
    model_conv_density,
    network_slimming,
    snip_prune,
)
from .compression import (
    CSC_INDEX_BITS,
    CompressionReport,
    LayerCompression,
    irregular_compression,
    pcnn_compression,
    spm_index_bits,
)
from .config import DEFAULT_PATTERN_BUDGET, LayerConfig, PCNNConfig
from .distillation import (
    DistillationResult,
    anneal_patterns,
    distill_layer,
    distill_patterns,
    exhaustive_optimal_patterns,
    pattern_frequencies,
)
from .masks import (
    kernel_nonzeros,
    mask_from_indices,
    pattern_mask_for_weight,
    sparsity_of_mask,
)
from .orthogonal import (
    apply_channel_pruning,
    apply_kernel_pruning,
    channel_keep_for_rate,
    channel_pruning_mask,
    combine_masks,
    fused_channel_report,
    fused_kernel_report,
    kernel_pruning_mask,
)
from .patterns import (
    best_pattern_indices,
    enumerate_patterns,
    format_pattern,
    full_pattern_count,
    kernel_to_pattern,
    mask_to_pattern,
    pattern_count,
    pattern_energy,
    pattern_positions,
    pattern_to_mask,
    patterns_to_bit_matrix,
    popcount,
    positions_to_pattern,
)
from .deploy import DeploymentBundle, LayerBundle, bundle_from_pruner
from .pattern_geometry import (
    canonical_pattern,
    center_hit,
    centrality,
    dihedral_orbit,
    flip_pattern,
    orbit_decomposition,
    rotate_pattern,
)
from .progressive import ProgressivePruner, ProgressiveStage
from .sensitivity import LayerSensitivity, sensitivity_scan, suggest_config
from .sparse_conv import dense_conv_flops, pattern_sparse_conv2d, sparse_conv_flops
from .projection import project_to_patterns, project_topn, projection_error
from .quantize import (
    QuantizedTensor,
    dequantize,
    quantization_error,
    quantize_per_kernel,
    quantize_symmetric,
)
from .pruner import PCNNPruner, PrunedLayerInfo
from .spm import EncodedLayer, SPMCodebook, decode_layer, encode_layer
from .train import TrainHistory, evaluate, fit, train_epoch

__all__ = [
    # patterns
    "enumerate_patterns",
    "pattern_count",
    "full_pattern_count",
    "popcount",
    "pattern_to_mask",
    "mask_to_pattern",
    "pattern_positions",
    "positions_to_pattern",
    "patterns_to_bit_matrix",
    "pattern_energy",
    "best_pattern_indices",
    "kernel_to_pattern",
    "format_pattern",
    # spm
    "SPMCodebook",
    "EncodedLayer",
    "encode_layer",
    "decode_layer",
    # projection
    "project_topn",
    "project_to_patterns",
    "projection_error",
    # distillation
    "DistillationResult",
    "pattern_frequencies",
    "distill_patterns",
    "distill_layer",
    "exhaustive_optimal_patterns",
    "anneal_patterns",
    # config
    "PCNNConfig",
    "LayerConfig",
    "DEFAULT_PATTERN_BUDGET",
    # masks
    "pattern_mask_for_weight",
    "mask_from_indices",
    "sparsity_of_mask",
    "kernel_nonzeros",
    # compression
    "CompressionReport",
    "LayerCompression",
    "pcnn_compression",
    "irregular_compression",
    "spm_index_bits",
    "CSC_INDEX_BITS",
    # pruner
    "PCNNPruner",
    "PrunedLayerInfo",
    # admm
    "ADMMFineTuner",
    "ADMMState",
    # train
    "TrainHistory",
    "train_epoch",
    "evaluate",
    "fit",
    # orthogonal
    "kernel_pruning_mask",
    "channel_pruning_mask",
    "apply_kernel_pruning",
    "apply_channel_pruning",
    "combine_masks",
    "fused_kernel_report",
    "fused_channel_report",
    "channel_keep_for_rate",
    # quantize / deploy
    "QuantizedTensor",
    "quantize_symmetric",
    "quantize_per_kernel",
    "dequantize",
    "quantization_error",
    "DeploymentBundle",
    "LayerBundle",
    "bundle_from_pruner",
    # geometry / progressive
    "rotate_pattern",
    "flip_pattern",
    "dihedral_orbit",
    "canonical_pattern",
    "orbit_decomposition",
    "centrality",
    "center_hit",
    "ProgressivePruner",
    "ProgressiveStage",
    # sensitivity / sparse conv
    "LayerSensitivity",
    "sensitivity_scan",
    "suggest_config",
    "pattern_sparse_conv2d",
    "sparse_conv_flops",
    "dense_conv_flops",
    # baselines
    "magnitude_prune_irregular",
    "filter_prune_l1",
    "network_slimming",
    "snip_prune",
    "model_conv_density",
]
