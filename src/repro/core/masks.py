"""Mask construction utilities shared by the pruners."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .patterns import best_pattern_indices, patterns_to_bit_matrix

__all__ = ["pattern_mask_for_weight", "mask_from_indices", "sparsity_of_mask", "kernel_nonzeros"]


def pattern_mask_for_weight(weight: np.ndarray, patterns: np.ndarray) -> np.ndarray:
    """{0,1} mask of ``weight``'s shape matching each kernel's best pattern."""
    k = weight.shape[-1]
    kernels = weight.reshape(-1, k * k)
    indices = best_pattern_indices(kernels, patterns, k)
    return mask_from_indices(indices, patterns, weight.shape)


def mask_from_indices(
    indices: np.ndarray, patterns: np.ndarray, shape: Tuple[int, ...]
) -> np.ndarray:
    """Expand per-kernel pattern indices into a weight-shaped {0,1} mask."""
    k = shape[-1]
    bits = patterns_to_bit_matrix(patterns, k)
    return bits[indices].reshape(shape)


def sparsity_of_mask(mask: np.ndarray) -> float:
    """Fraction of zero entries."""
    return 1.0 - float(np.count_nonzero(mask)) / mask.size


def kernel_nonzeros(mask: np.ndarray) -> np.ndarray:
    """Non-zero count of each kernel — PCNN requires these all equal."""
    k = mask.shape[-1]
    return np.count_nonzero(mask.reshape(-1, k * k), axis=1)
