"""Geometric analysis of sparsity patterns (extension).

Patterns live on the 3x3 grid, so the dihedral group D4 (rotations +
reflections) acts on them. Two uses for this reproduction:

- *hardware*: patterns in one D4 orbit can share decode logic (a rotated
  read port), so counting orbits bounds the distinct decode cases a
  pattern SRAM mapping table must support;
- *analysis*: trained CNNs favour centre-heavy patterns (the convolution's
  receptive-field prior); :func:`centrality` quantifies this and the
  distillation ablation bench reports it for distilled pattern sets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from .patterns import mask_to_pattern, pattern_to_mask, popcount

__all__ = [
    "rotate_pattern",
    "flip_pattern",
    "dihedral_orbit",
    "canonical_pattern",
    "orbit_decomposition",
    "centrality",
    "center_hit",
]


def rotate_pattern(pattern: int, quarter_turns: int = 1, kernel_size: int = 3) -> int:
    """Rotate a pattern by 90 degrees clockwise ``quarter_turns`` times."""
    mask = pattern_to_mask(pattern, kernel_size)
    rotated = np.rot90(mask, k=-(quarter_turns % 4))
    return mask_to_pattern(rotated)


def flip_pattern(pattern: int, axis: str = "horizontal", kernel_size: int = 3) -> int:
    """Mirror a pattern. ``axis`` is ``"horizontal"`` (left-right) or
    ``"vertical"`` (up-down)."""
    mask = pattern_to_mask(pattern, kernel_size)
    if axis == "horizontal":
        flipped = mask[:, ::-1]
    elif axis == "vertical":
        flipped = mask[::-1, :]
    else:
        raise ValueError(f"unknown axis {axis!r}")
    return mask_to_pattern(flipped)


def dihedral_orbit(pattern: int, kernel_size: int = 3) -> Set[int]:
    """All images of a pattern under D4 (at most 8 elements)."""
    orbit: Set[int] = set()
    for flips in (False, True):
        base = flip_pattern(pattern, "horizontal", kernel_size) if flips else pattern
        for turns in range(4):
            orbit.add(rotate_pattern(base, turns, kernel_size))
    return orbit


def canonical_pattern(pattern: int, kernel_size: int = 3) -> int:
    """Smallest pattern in the D4 orbit — a canonical orbit label."""
    return min(dihedral_orbit(pattern, kernel_size))


def orbit_decomposition(patterns: Sequence[int], kernel_size: int = 3) -> Dict[int, List[int]]:
    """Group patterns by D4 orbit: canonical label -> members present."""
    groups: Dict[int, List[int]] = {}
    for pattern in patterns:
        label = canonical_pattern(int(pattern), kernel_size)
        groups.setdefault(label, []).append(int(pattern))
    return groups


def centrality(pattern: int, kernel_size: int = 3) -> float:
    """Mean Chebyshev distance of the pattern's positions to the centre.

    0.0 means all mass at the centre position; 1.0 means all positions on
    the 3x3 ring. Lower = more centre-heavy.
    """
    mask = pattern_to_mask(pattern, kernel_size)
    positions = np.argwhere(mask > 0)
    if len(positions) == 0:
        return 0.0
    centre = (kernel_size - 1) / 2.0
    distances = np.max(np.abs(positions - centre), axis=1)
    return float(distances.mean())


def center_hit(pattern: int, kernel_size: int = 3) -> bool:
    """Whether the pattern keeps the centre position."""
    centre_bit = (kernel_size * kernel_size) // 2
    return bool((pattern >> centre_bit) & 1)
