"""Compression-rate and FLOPs accounting (Tables I-IV, last columns).

All numbers the paper reports besides accuracy are deterministic functions
of (architecture, per-layer n, per-layer |P_l|, storage bit-widths). This
module computes them:

- *weight compression* — dense conv weights / remaining conv weights;
- *weight+idx compression* — including one ``ceil(log2 |P_l|)``-bit SPM
  code per kernel (PCNN) or ~4 index bits per non-zero weight (CSC /
  EIE-style irregular pruning, used for the paper's "2.0x, three times as
  low as ours" comparison in Sec. IV-B);
- *CONV FLOPs* before/after and the pruned percentage.

Weights are accounted at 32 bits by default, which reproduces the printed
weight+idx columns of Tables I and IV to within rounding (verified in
tests/core/test_compression.py and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import List, Optional, Sequence

from ..models.flops import ModelProfile
from .config import PCNNConfig

__all__ = [
    "LayerCompression",
    "CompressionReport",
    "pcnn_compression",
    "irregular_compression",
    "spm_index_bits",
    "CSC_INDEX_BITS",
]

# EIE [12] stores a 4-bit run-length index per non-zero weight.
CSC_INDEX_BITS = 4


def spm_index_bits(num_patterns: int) -> int:
    """Bits of one SPM code for a codebook of ``num_patterns`` patterns."""
    return max(1, ceil(log2(num_patterns))) if num_patterns > 1 else 1


@dataclass(frozen=True)
class LayerCompression:
    """Pruning accounting for one conv layer."""

    name: str
    kernels: int
    kernel_area: int  # k*k positions
    n_nonzero: int  # kept weights per kernel (== kernel_area when dense)
    index_bits_per_kernel: float  # SPM bits; 0 when layer is left dense
    dense_macs: int
    pruned: bool

    @property
    def dense_params(self) -> int:
        return self.kernels * self.kernel_area

    @property
    def pruned_params(self) -> int:
        return self.kernels * self.n_nonzero

    @property
    def pruned_macs(self) -> float:
        return self.dense_macs * (self.n_nonzero / self.kernel_area)

    @property
    def index_bits_total(self) -> float:
        return self.kernels * self.index_bits_per_kernel


@dataclass
class CompressionReport:
    """Whole-model pruning accounting — one paper table row."""

    model_name: str
    setting: str
    layers: List[LayerCompression]
    weight_bits: int = 32

    @property
    def dense_params(self) -> int:
        return sum(layer.dense_params for layer in self.layers)

    @property
    def pruned_params(self) -> float:
        return sum(layer.pruned_params for layer in self.layers)

    @property
    def dense_macs(self) -> int:
        return sum(layer.dense_macs for layer in self.layers)

    @property
    def pruned_macs(self) -> float:
        return sum(layer.pruned_macs for layer in self.layers)

    @property
    def flops_pruned_fraction(self) -> float:
        """Fraction of conv MACs removed ("FLOPs Pruned" column)."""
        return 1.0 - self.pruned_macs / self.dense_macs

    @property
    def weight_compression(self) -> float:
        """Compression counting weights only."""
        return self.dense_params / self.pruned_params

    @property
    def index_bits_total(self) -> float:
        return sum(layer.index_bits_total for layer in self.layers)

    @property
    def weight_idx_compression(self) -> float:
        """Compression including index storage (the honest last column)."""
        dense_bits = self.dense_params * self.weight_bits
        pruned_bits = self.pruned_params * self.weight_bits + self.index_bits_total
        return dense_bits / pruned_bits

    def summary_row(self) -> dict:
        """Row dict matching the paper's table columns."""
        return {
            "benchmark": f"{self.model_name}, {self.setting}",
            "conv_flops": self.pruned_macs,
            "flops_pruned_pct": 100.0 * self.flops_pruned_fraction,
            "conv_params": self.pruned_params,
            "compression_weight": self.weight_compression,
            "compression_weight_idx": self.weight_idx_compression,
        }


def pcnn_compression(
    profile: ModelProfile,
    config: PCNNConfig,
    setting: Optional[str] = None,
    weight_bits: int = 32,
    num_patterns_override: Optional[Sequence[int]] = None,
) -> CompressionReport:
    """PCNN accounting for a model profile under a pruning config.

    The config covers the profile's prunable (3x3) layers in order; any
    other conv layer (e.g. ResNet's 1x1 projections) is carried dense.
    """
    prunable = profile.prunable(kernel_size=config.kernel_size)
    config.validate_for(len(prunable))
    prunable_names = {c.name for c in prunable}

    layers: List[LayerCompression] = []
    config_iter = iter(config)
    overrides = iter(num_patterns_override) if num_patterns_override is not None else None
    for conv in profile.convs:
        if conv.name in prunable_names:
            layer_cfg = next(config_iter)
            budget = next(overrides) if overrides is not None else layer_cfg.num_patterns
            layers.append(
                LayerCompression(
                    name=conv.name,
                    kernels=conv.kernels,
                    kernel_area=conv.kernel_size**2,
                    n_nonzero=layer_cfg.n,
                    index_bits_per_kernel=spm_index_bits(budget),
                    dense_macs=conv.macs,
                    pruned=True,
                )
            )
        else:
            layers.append(
                LayerCompression(
                    name=conv.name,
                    kernels=conv.kernels,
                    kernel_area=conv.kernel_size**2,
                    n_nonzero=conv.kernel_size**2,
                    index_bits_per_kernel=0.0,
                    dense_macs=conv.macs,
                    pruned=False,
                )
            )
    label = setting if setting is not None else config.describe()
    return CompressionReport(
        model_name=profile.model_name, setting=label, layers=layers, weight_bits=weight_bits
    )


def irregular_compression(
    profile: ModelProfile,
    n_equivalent: int,
    setting: Optional[str] = None,
    weight_bits: int = 32,
    index_bits_per_weight: int = CSC_INDEX_BITS,
    kernel_size: int = 3,
) -> CompressionReport:
    """Irregular (CSC-indexed) pruning at the same density as PCNN n.

    Each *remaining weight* carries ``index_bits_per_weight`` bits (EIE's
    4-bit run-length format [12]); expressed per kernel that is
    ``n * index_bits_per_weight`` so it can reuse the same accounting.
    """
    prunable = profile.prunable(kernel_size=kernel_size)
    prunable_names = {c.name for c in prunable}
    layers: List[LayerCompression] = []
    for conv in profile.convs:
        if conv.name in prunable_names:
            layers.append(
                LayerCompression(
                    name=conv.name,
                    kernels=conv.kernels,
                    kernel_area=conv.kernel_size**2,
                    n_nonzero=n_equivalent,
                    index_bits_per_kernel=n_equivalent * index_bits_per_weight,
                    dense_macs=conv.macs,
                    pruned=True,
                )
            )
        else:
            layers.append(
                LayerCompression(
                    name=conv.name,
                    kernels=conv.kernels,
                    kernel_area=conv.kernel_size**2,
                    n_nonzero=conv.kernel_size**2,
                    index_bits_per_kernel=0.0,
                    dense_macs=conv.macs,
                    pruned=False,
                )
            )
    label = setting if setting is not None else f"irregular n={n_equivalent} (CSC)"
    return CompressionReport(
        model_name=profile.model_name, setting=label, layers=layers, weight_bits=weight_bits
    )
