"""Sparsity Pattern Mask (SPM) — the paper's index format (Sec. II-A).

A layer pruned with PCNN stores, per kernel, (a) the ``n`` non-zero weight
values in kernel-position order and (b) one SPM *code*: an integer index
into the layer's pattern codebook ``P_l``. The codebook is small (4-32
patterns after distillation), so the code costs ``ceil(log2(|P_l|))`` bits
per *kernel* — versus CSC's ~4 bits per *weight* (EIE [12]), which is where
PCNN's index-overhead advantage (last columns of Tables I-III) comes from.

:class:`SPMCodebook` is the software model of the "SPM mapping table" that
the hardware's Pattern Config block provides to the decoder (Fig. 3a).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .patterns import (
    best_pattern_indices,
    patterns_to_bit_matrix,
    popcount,
)

__all__ = ["SPMCodebook", "EncodedLayer", "encode_layer", "decode_layer"]


class SPMCodebook:
    """Mapping between SPM codes and patterns for one layer.

    Parameters
    ----------
    patterns:
        The distilled pattern set ``P_l`` (bitmasks). All patterns must
        share the same popcount — PCNN keeps kernel sparsity identical
        within a layer so non-zero sequences have equal length (Sec. II-A).
    kernel_size:
        Spatial kernel size (3 for every pruned layer in the paper).
    """

    def __init__(self, patterns: Sequence[int], kernel_size: int = 3) -> None:
        patterns = np.array(sorted(int(p) for p in patterns), dtype=np.int64)
        if len(patterns) == 0:
            raise ValueError("codebook needs at least one pattern")
        if len(np.unique(patterns)) != len(patterns):
            raise ValueError("duplicate patterns in codebook")
        counts = popcount(patterns)
        if len(np.unique(counts)) != 1:
            raise ValueError(
                "PCNN requires identical sparsity within a layer; "
                f"got popcounts {sorted(set(counts.tolist()))}"
            )
        self.kernel_size = kernel_size
        self.patterns = patterns
        self.n_nonzero = int(counts[0])
        self._code_of: Dict[int, int] = {int(p): i for i, p in enumerate(patterns)}

    def __len__(self) -> int:
        return len(self.patterns)

    def __contains__(self, pattern: int) -> bool:
        return int(pattern) in self._code_of

    @property
    def index_bits(self) -> int:
        """Bits per SPM code: ``ceil(log2(|P_l|))``, minimum 1."""
        return max(1, ceil(log2(len(self.patterns)))) if len(self.patterns) > 1 else 1

    def code(self, pattern: int) -> int:
        """SPM code of a pattern (KeyError if not in the codebook)."""
        return self._code_of[int(pattern)]

    def pattern(self, code: int) -> int:
        """Pattern for an SPM code — the hardware decoder's lookup."""
        return int(self.patterns[code])

    def decode_mask(self, code: int) -> np.ndarray:
        """9-bit weight mask for a code, as the Pattern Decoder emits."""
        bits = patterns_to_bit_matrix(self.patterns[code : code + 1], self.kernel_size)
        return bits[0]


@dataclass
class EncodedLayer:
    """A layer's weights in PCNN storage format.

    Attributes
    ----------
    codes:
        ``(kernels,)`` SPM code per kernel.
    values:
        ``(kernels, n)`` non-zero values in kernel-position order — the
        equal-length "non-zero sequences" of Fig. 1.
    codebook:
        The layer's :class:`SPMCodebook`.
    shape:
        Original weight shape ``(C_out, C_in, k, k)``.
    """

    codes: np.ndarray
    values: np.ndarray
    codebook: SPMCodebook
    shape: Tuple[int, int, int, int]

    @property
    def num_kernels(self) -> int:
        return len(self.codes)

    @property
    def weight_bits_per_kernel(self) -> int:
        """Non-zero payload bits per kernel at 32-bit storage."""
        return self.values.shape[1] * 32

    def storage_bits(self, weight_bits: int = 32) -> int:
        """Total storage: values + one SPM code per kernel."""
        return self.values.size * weight_bits + self.num_kernels * self.codebook.index_bits


def encode_layer(weight: np.ndarray, codebook: SPMCodebook) -> EncodedLayer:
    """Encode a (already pattern-pruned or dense) conv weight with SPM.

    Each kernel is matched to its nearest codebook pattern (max retained
    energy — the projection of Eq. (1)); values outside the pattern are
    dropped. For weights that were hard-pruned onto codebook patterns this
    is exact (lossless).
    """
    c_out, c_in, kh, kw = weight.shape
    if kh != kw or kh != codebook.kernel_size:
        raise ValueError(f"kernel size mismatch: weight {kh}x{kw} vs codebook {codebook.kernel_size}")
    kernels = weight.reshape(-1, kh * kw)
    indices = best_pattern_indices(kernels, codebook.patterns, codebook.kernel_size)
    bits = patterns_to_bit_matrix(codebook.patterns, codebook.kernel_size).astype(bool)
    n = codebook.n_nonzero
    values = np.zeros((len(kernels), n))
    for i, (kernel, code) in enumerate(zip(kernels, indices)):
        values[i] = kernel[bits[code]]
    return EncodedLayer(
        codes=indices.astype(np.int64),
        values=values,
        codebook=codebook,
        shape=(c_out, c_in, kh, kw),
    )


def decode_layer(encoded: EncodedLayer) -> np.ndarray:
    """Reconstruct the dense (pruned) weight tensor from SPM storage.

    This is the software model of the hardware "kernel restore" stage
    (Fig. 5, data pre-process): scatter each kernel's non-zero sequence
    back to the positions given by its decoded weight mask.
    """
    c_out, c_in, kh, kw = encoded.shape
    bits = patterns_to_bit_matrix(encoded.codebook.patterns, kh).astype(bool)
    kernels = np.zeros((encoded.num_kernels, kh * kw))
    for i, code in enumerate(encoded.codes):
        kernels[i][bits[code]] = encoded.values[i]
    return kernels.reshape(c_out, c_in, kh, kw)
