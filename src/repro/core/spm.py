"""Sparsity Pattern Mask (SPM) — the paper's index format (Sec. II-A).

A layer pruned with PCNN stores, per kernel, (a) the ``n`` non-zero weight
values in kernel-position order and (b) one SPM *code*: an integer index
into the layer's pattern codebook ``P_l``. The codebook is small (4-32
patterns after distillation), so the code costs ``ceil(log2(|P_l|))`` bits
per *kernel* — versus CSC's ~4 bits per *weight* (EIE [12]), which is where
PCNN's index-overhead advantage (last columns of Tables I-III) comes from.

:class:`SPMCodebook` is the software model of the "SPM mapping table" that
the hardware's Pattern Config block provides to the decoder (Fig. 3a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .patterns import (
    best_pattern_indices,
    pattern_positions,
    patterns_to_bit_matrix,
    popcount,
)

__all__ = [
    "SPMCodebook",
    "PatternGatherPlan",
    "EncodedLayer",
    "encode_layer",
    "decode_layer",
]


class SPMCodebook:
    """Mapping between SPM codes and patterns for one layer.

    Parameters
    ----------
    patterns:
        The distilled pattern set ``P_l`` (bitmasks). All patterns must
        share the same popcount — PCNN keeps kernel sparsity identical
        within a layer so non-zero sequences have equal length (Sec. II-A).
    kernel_size:
        Spatial kernel size (3 for every pruned layer in the paper).
    """

    def __init__(self, patterns: Sequence[int], kernel_size: int = 3) -> None:
        patterns = np.array(sorted(int(p) for p in patterns), dtype=np.int64)
        if len(patterns) == 0:
            raise ValueError("codebook needs at least one pattern")
        if len(np.unique(patterns)) != len(patterns):
            raise ValueError("duplicate patterns in codebook")
        counts = popcount(patterns)
        if len(np.unique(counts)) != 1:
            raise ValueError(
                "PCNN requires identical sparsity within a layer; "
                f"got popcounts {sorted(set(counts.tolist()))}"
            )
        self.kernel_size = kernel_size
        self.patterns = patterns
        self.n_nonzero = int(counts[0])
        self._code_of: Dict[int, int] = {int(p): i for i, p in enumerate(patterns)}

    def __len__(self) -> int:
        return len(self.patterns)

    def __contains__(self, pattern: int) -> bool:
        return int(pattern) in self._code_of

    @property
    def index_bits(self) -> int:
        """Bits per SPM code: ``ceil(log2(|P_l|))``, minimum 1.

        Delegates to :func:`repro.core.compression.spm_index_bits` — the
        single definition of the formula, so the codebook and the
        compression accounting can never drift apart.
        """
        from .compression import spm_index_bits

        return spm_index_bits(len(self.patterns))

    def code(self, pattern: int) -> int:
        """SPM code of a pattern (KeyError if not in the codebook)."""
        return self._code_of[int(pattern)]

    def pattern(self, code: int) -> int:
        """Pattern for an SPM code — the hardware decoder's lookup."""
        return int(self.patterns[code])

    def decode_mask(self, code: int) -> np.ndarray:
        """9-bit weight mask for a code, as the Pattern Decoder emits."""
        bits = patterns_to_bit_matrix(self.patterns[code : code + 1], self.kernel_size)
        return bits[0]


@dataclass
class PatternGatherPlan:
    """Precomputed im2col gather geometry for one encoded layer.

    ``positions_by_code[g]`` holds pattern ``g``'s ``n`` kernel positions
    (decoded once per code, never per forward call) — the index state the
    grouped-contraction backend reads on every execution. ``col_idx()``
    expands it to the per-kernel view for gather-style consumers:
    ``col_idx[k, j]`` is the im2col column holding the activation that
    multiplies ``values[k, j]``, i.e. ``channel(k) * k^2 +
    positions_by_code[code_k, j]`` (kernel ``k`` is ``(filter, channel) =
    divmod(k, C_in)``). It is derived on demand — a pure function of the
    cached fields, so there is no second cache to keep in sync.
    """

    positions_by_code: np.ndarray  # (|P|, n) int64 kernel positions per code
    codes: np.ndarray  # (kernels,) SPM code per kernel
    c_in: int
    n: int
    k2: int

    def col_idx(self) -> np.ndarray:
        """(kernels, n) int64 im2col gather column per stored value."""
        channels = np.arange(len(self.codes), dtype=np.int64) % self.c_in
        return channels[:, None] * self.k2 + self.positions_by_code[self.codes]


@dataclass
class EncodedLayer:
    """A layer's weights in PCNN storage format.

    Attributes
    ----------
    codes:
        ``(kernels,)`` SPM code per kernel.
    values:
        ``(kernels, n)`` non-zero values in kernel-position order — the
        equal-length "non-zero sequences" of Fig. 1.
    codebook:
        The layer's :class:`SPMCodebook`.
    shape:
        Original weight shape ``(C_out, C_in, k, k)``.
    """

    codes: np.ndarray
    values: np.ndarray
    codebook: SPMCodebook
    shape: Tuple[int, int, int, int]
    _gather_plan: Optional[PatternGatherPlan] = field(
        default=None, repr=False, compare=False
    )
    _grouped_weights: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _decoded: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @property
    def num_kernels(self) -> int:
        return len(self.codes)

    def decoded_weight(self) -> np.ndarray:
        """Dense (pruned) weight tensor, decoded once and memoized.

        The runtime engine's dense/tiled backends (and the pattern
        backend's diverse-codebook fallback) read this on repeated
        forwards; treat the returned array as read-only.
        """
        if self._decoded is None:
            self._decoded = decode_layer(self)
        return self._decoded

    def gather_plan(self) -> PatternGatherPlan:
        """Cached im2col gather indices for the pattern-sparse conv.

        Pattern positions are decoded once per *code* and broadcast to
        kernels through the codes array; the result is memoized on the
        layer so repeated forward passes (the runtime engine's hot path)
        never repeat the index math. The layer treats codes, values and
        codebook as immutable after encoding; if you mutate them anyway,
        call :meth:`invalidate_caches`.
        """
        if self._gather_plan is None:
            c_out, c_in, kh, kw = self.shape
            k2 = kh * kw
            n = self.codebook.n_nonzero
            positions_by_code = np.array(
                [
                    pattern_positions(self.codebook.pattern(code), kh)
                    for code in range(len(self.codebook))
                ],
                dtype=np.int64,
            ).reshape(len(self.codebook), n)
            self._gather_plan = PatternGatherPlan(
                positions_by_code=positions_by_code,
                codes=self.codes,
                c_in=c_in,
                n=n,
                k2=k2,
            )
        return self._gather_plan

    def grouped_weight_matrix(self) -> np.ndarray:
        """Cached ``(|P| * C_in * n, C_out)`` grouped-contraction weights.

        The paper's central regularity claim, in matrix form: because all
        kernels sharing an SPM code read the same ``n`` positions, the
        layer's convolution is ``A @ B`` where ``A`` gathers the
        ``|P| * n`` pattern positions per input channel from the im2col
        matrix and ``B`` scatters each kernel's non-zero sequence into
        its ``(code, channel)`` block — zeros everywhere a kernel belongs
        to a different group. One BLAS GEMM replaces per-pattern Python
        loops; built once per layer and memoized.
        """
        if self._grouped_weights is None:
            c_out, c_in, kh, kw = self.shape
            n = self.codebook.n_nonzero
            num_patterns = len(self.codebook)
            kernels = np.arange(self.num_kernels)
            grouped = np.zeros(
                (num_patterns, c_in, n, c_out), dtype=self.values.dtype
            )
            grouped[self.codes, kernels % c_in, :, kernels // c_in] = self.values
            self._grouped_weights = grouped.reshape(num_patterns * c_in * n, c_out)
        return self._grouped_weights

    def invalidate_caches(self) -> int:
        """Drop cached gather/weight state after mutating the layer.

        Returns the cache bytes released (see :meth:`cached_nbytes`) so
        a fleet residency ledger can account the reclaim.
        """
        freed = self.cached_nbytes
        self._gather_plan = None
        self._grouped_weights = None
        self._decoded = None
        return freed

    @property
    def nbytes(self) -> int:
        """Bytes of the owned storage format: codes + non-zero values."""
        return int(self.codes.nbytes + self.values.nbytes)

    @property
    def cached_nbytes(self) -> int:
        """Bytes of the memoized *derived* state (gather plan positions,
        grouped GEMM operand, decoded dense weight) — the reclaimable
        part; the storage format itself (:attr:`nbytes`) stays."""
        total = 0
        if self._gather_plan is not None:
            total += int(self._gather_plan.positions_by_code.nbytes)
        if self._grouped_weights is not None:
            total += int(self._grouped_weights.nbytes)
        if self._decoded is not None:
            total += int(self._decoded.nbytes)
        return total

    @property
    def weight_bits_per_kernel(self) -> int:
        """Non-zero payload bits per kernel at 32-bit storage."""
        return self.values.shape[1] * 32

    def storage_bits(self, weight_bits: int = 32) -> int:
        """Total storage: values + one SPM code per kernel."""
        return self.values.size * weight_bits + self.num_kernels * self.codebook.index_bits


def encode_layer(weight: np.ndarray, codebook: SPMCodebook) -> EncodedLayer:
    """Encode a (already pattern-pruned or dense) conv weight with SPM.

    Each kernel is matched to its nearest codebook pattern (max retained
    energy — the projection of Eq. (1)); values outside the pattern are
    dropped. For weights that were hard-pruned onto codebook patterns this
    is exact (lossless).
    """
    c_out, c_in, kh, kw = weight.shape
    if kh != kw or kh != codebook.kernel_size:
        raise ValueError(f"kernel size mismatch: weight {kh}x{kw} vs codebook {codebook.kernel_size}")
    kernels = weight.reshape(-1, kh * kw)
    indices = best_pattern_indices(kernels, codebook.patterns, codebook.kernel_size)
    bits = patterns_to_bit_matrix(codebook.patterns, codebook.kernel_size).astype(bool)
    n = codebook.n_nonzero
    # Boolean-mask selection walks rows in order and each row's True
    # positions in kernel-position order — exactly the non-zero sequence
    # layout, with no per-kernel Python loop.
    values = kernels[bits[indices]].reshape(len(kernels), n).astype(weight.dtype, copy=False)
    return EncodedLayer(
        codes=indices.astype(np.int64),
        values=values,
        codebook=codebook,
        shape=(c_out, c_in, kh, kw),
    )


def decode_layer(encoded: EncodedLayer) -> np.ndarray:
    """Reconstruct the dense (pruned) weight tensor from SPM storage.

    This is the software model of the hardware "kernel restore" stage
    (Fig. 5, data pre-process): scatter each kernel's non-zero sequence
    back to the positions given by its decoded weight mask.
    """
    c_out, c_in, kh, kw = encoded.shape
    bits = patterns_to_bit_matrix(encoded.codebook.patterns, kh).astype(bool)
    kernels = np.zeros((encoded.num_kernels, kh * kw), dtype=encoded.values.dtype)
    kernels[bits[encoded.codes]] = encoded.values.ravel()
    return kernels.reshape(c_out, c_in, kh, kw)
