"""Progressive PCNN pruning (extension / future-work direction).

The paper prunes in one shot (distill -> ADMM -> hard prune). A standard
refinement in the pruning literature is *gradual* sparsification: step the
per-kernel budget down (e.g. 9 -> 6 -> 4 -> 2 -> 1) with a short masked
retraining between steps, letting the network adapt at each level. This
module implements that schedule on top of the PCNN machinery, and the
``bench_ablation_progressive`` benchmark compares it against one-shot
pruning at the final sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..data import DataLoader
from .config import PCNNConfig
from .pruner import PCNNPruner
from .train import evaluate, fit

__all__ = ["ProgressiveStage", "ProgressivePruner"]


@dataclass
class ProgressiveStage:
    """Record of one progressive step."""

    n: int
    accuracy_after_prune: float
    accuracy_after_retrain: float


class ProgressivePruner:
    """Step the kernel budget down a schedule with retraining in between.

    Parameters
    ----------
    model:
        Model whose 3x3 convs get pruned (masks are re-installed at every
        stage; patterns are re-distilled from the current weights, so the
        pattern set tracks the adapting network).
    schedule:
        Decreasing sequence of per-kernel budgets, e.g. ``(6, 4, 2, 1)``.
    num_patterns:
        Pattern budget applied at every stage (paper defaults when None).
    """

    def __init__(
        self,
        model: nn.Module,
        schedule: Sequence[int] = (6, 4, 2, 1),
        num_patterns: Optional[int] = None,
    ) -> None:
        if any(a <= b for a, b in zip(schedule, schedule[1:])):
            raise ValueError("schedule must be strictly decreasing")
        self.model = model
        self.schedule = tuple(schedule)
        self.num_patterns = num_patterns
        self.stages: List[ProgressiveStage] = []

    def _num_layers(self) -> int:
        return sum(
            1
            for _, module in self.model.named_modules()
            if isinstance(module, nn.Conv2d) and module.kernel_size == 3
        )

    def run(
        self,
        loader: DataLoader,
        eval_data: Tuple[np.ndarray, np.ndarray],
        epochs_per_stage: int = 2,
        lr: float = 0.01,
    ) -> List[ProgressiveStage]:
        """Execute the schedule; returns per-stage accuracy records."""
        x_eval, y_eval = eval_data
        layers = self._num_layers()
        for n in self.schedule:
            # Clear stale masks so distillation sees the adapted weights.
            for _, module in self.model.named_modules():
                if isinstance(module, nn.Conv2d) and module.kernel_size == 3:
                    module.set_weight_mask(None)
            config = PCNNConfig.uniform(n, layers, num_patterns=self.num_patterns)
            pruner = PCNNPruner(self.model, config)
            pruner.apply()
            after_prune = evaluate(self.model, x_eval, y_eval)
            fit(self.model, loader, epochs=epochs_per_stage, lr=lr)
            after_retrain = evaluate(self.model, x_eval, y_eval)
            self.stages.append(
                ProgressiveStage(
                    n=n,
                    accuracy_after_prune=after_prune,
                    accuracy_after_retrain=after_retrain,
                )
            )
        return self.stages

    @property
    def final_accuracy(self) -> float:
        if not self.stages:
            raise RuntimeError("run() has not been called")
        return self.stages[-1].accuracy_after_retrain
