"""Deployment bundles: the PCNN on-device model format.

A *bundle* is what ships to the pattern-aware accelerator: per pruned
layer the SPM codes, the equal-length non-zero sequences (optionally
quantized to the hardware's 8-bit format), the layer's pattern codebook
(the SPM mapping table the Pattern Config block loads), and the original
weight shape. Bundles serialise to a single ``.npz`` file, can be restored
into a model (installing weights *and* masks), and report their exact
storage footprint — the artifact-level counterpart of the compression
columns in Tables I-III.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .. import nn
from .pruner import PCNNPruner
from .quantize import QuantizedTensor, quantize_per_kernel
from .spm import EncodedLayer, SPMCodebook, decode_layer

__all__ = ["LayerBundle", "DeploymentBundle", "bundle_from_pruner"]


@dataclass
class LayerBundle:
    """One pruned layer in deployment form."""

    codes: np.ndarray  # (kernels,) SPM codes
    values: np.ndarray  # (kernels, n) float, or int codes when quantized
    scales: Optional[np.ndarray]  # per-kernel scales when quantized
    patterns: np.ndarray  # codebook bitmasks
    shape: tuple
    weight_bits: int
    _encoded: Optional[EncodedLayer] = field(default=None, repr=False, compare=False)

    @property
    def quantized(self) -> bool:
        return self.scales is not None

    @property
    def n_nonzero(self) -> int:
        return self.values.shape[1]

    @property
    def index_bits(self) -> int:
        from .compression import spm_index_bits

        return spm_index_bits(len(self.patterns))

    def storage_bits(self) -> int:
        """values + SPM codes (+ the mapping table itself)."""
        table_bits = len(self.patterns) * self.shape[-1] * self.shape[-2]
        return (
            self.values.size * self.weight_bits
            + len(self.codes) * self.index_bits
            + table_bits
        )

    def encoded_layer(self) -> EncodedLayer:
        """SPM view of this layer (dequantized), cached for reuse.

        Caching matters: the runtime engine memoizes pattern gather
        indices on the :class:`EncodedLayer`, so repeated
        :meth:`conv_forward` calls plan once and then only execute.

        For a quantized bundle only the ``(kernels, n)`` non-zero
        sequences are scaled back to float here — never the dense
        ``k^2`` tensor. Downstream int8 serving
        (``compile_model(quantize=...)`` on a bundle-restored model)
        re-quantizes those same sequences per output filter, so the
        bundle-to-GEMM path stays free of dense float weights.
        """
        if self._encoded is None:
            codebook = SPMCodebook(self.patterns, kernel_size=self.shape[-1])
            if self.quantized:
                values = self.values.astype(np.float64) * self.scales
            else:
                values = self.values
            self._encoded = EncodedLayer(
                codes=self.codes, values=values, codebook=codebook, shape=self.shape
            )
        return self._encoded

    def conv_forward(
        self,
        x: np.ndarray,
        bias: Optional[np.ndarray] = None,
        stride: int = 1,
        padding: int = 1,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Run this layer's convolution straight from bundle storage.

        Routes through :func:`repro.runtime.dispatch`; by default the
        pattern backend computes from the SPM encoding without ever
        materialising the dense weight.
        """
        from ..runtime.engine import dispatch

        return dispatch(
            x,
            encoded=self.encoded_layer(),
            bias=bias,
            stride=stride,
            padding=padding,
            backend=backend,
        )

    def dense_weight(self) -> np.ndarray:
        """Reconstruct the dense pruned weight tensor."""
        return decode_layer(self.encoded_layer())


@dataclass
class DeploymentBundle:
    """Bundle of all pruned layers of a model."""

    layers: Dict[str, LayerBundle] = field(default_factory=dict)

    @property
    def quantized(self) -> bool:
        """Whether every layer carries reduced-precision integer values."""
        return bool(self.layers) and all(
            layer.quantized for layer in self.layers.values()
        )

    def storage_bits(self) -> int:
        """Total bundle payload in bits, summed over layers."""
        return sum(layer.storage_bits() for layer in self.layers.values())

    def storage_report(self) -> Dict[str, dict]:
        """Per-layer storage breakdown in bits."""
        report = {}
        for name, layer in self.layers.items():
            dense_bits = int(np.prod(layer.shape)) * 32
            report[name] = {
                "kernels": len(layer.codes),
                "n": layer.n_nonzero,
                "weight_bits": layer.weight_bits,
                "index_bits": layer.index_bits,
                "bundle_bits": layer.storage_bits(),
                "dense_fp32_bits": dense_bits,
                "compression": dense_bits / layer.storage_bits(),
            }
        return report

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Serialise to a single compressed ``.npz`` archive."""
        payload: Dict[str, np.ndarray] = {
            "__layer_names__": np.array(sorted(self.layers), dtype="U"),
        }
        for name, layer in self.layers.items():
            payload[f"{name}::codes"] = layer.codes
            payload[f"{name}::values"] = layer.values
            payload[f"{name}::patterns"] = layer.patterns
            payload[f"{name}::shape"] = np.array(layer.shape)
            payload[f"{name}::weight_bits"] = np.array(layer.weight_bits)
            if layer.scales is not None:
                payload[f"{name}::scales"] = layer.scales
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str) -> "DeploymentBundle":
        bundle = cls()
        with np.load(path) as archive:
            names = [str(n) for n in archive["__layer_names__"]]
            for name in names:
                scales_key = f"{name}::scales"
                bundle.layers[name] = LayerBundle(
                    codes=archive[f"{name}::codes"],
                    values=archive[f"{name}::values"],
                    scales=archive[scales_key] if scales_key in archive.files else None,
                    patterns=archive[f"{name}::patterns"],
                    shape=tuple(int(s) for s in archive[f"{name}::shape"]),
                    weight_bits=int(archive[f"{name}::weight_bits"]),
                )
        return bundle

    # ------------------------------------------------------------------
    def restore_into(self, model: nn.Module) -> None:
        """Install bundle weights, pattern masks and SPM encodings.

        Each restored conv also gets the bundle's cached
        :meth:`LayerBundle.encoded_layer` attached, so the runtime
        engine's no-grad fast path serves it through the pattern backend
        straight from SPM storage — without the encoding, a restored
        PCNN model would silently fall back to the dense backend and
        lose the pattern-GEMM speedup.
        """
        modules = dict(model.named_modules())
        for name, layer in self.layers.items():
            module = modules.get(name)
            if module is None or not isinstance(module, nn.Conv2d):
                raise KeyError(f"{name!r} is not a Conv2d in this model")
            weight = layer.dense_weight()
            if weight.shape != module.weight.data.shape:
                raise ValueError(
                    f"{name}: bundle shape {weight.shape} != model "
                    f"{module.weight.data.shape}"
                )
            module.weight.data[...] = weight
            # Order matters: installing a mask clears any attached
            # encoding, so the encoding goes on afterwards.
            module.set_weight_mask((weight != 0).astype(np.float64))
            module.attach_encoding(layer.encoded_layer())


def bundle_from_pruner(
    pruner: PCNNPruner, quantize_bits: Optional[int] = None
) -> DeploymentBundle:
    """Build a bundle from an applied :class:`PCNNPruner`.

    ``quantize_bits=8`` produces the hardware format (per-kernel symmetric
    scales); ``None`` keeps float32 values.
    """
    encoded = pruner.encode()
    bundle = DeploymentBundle()
    for name, layer in encoded.items():
        if quantize_bits is not None:
            quantized: QuantizedTensor = quantize_per_kernel(layer.values, bits=quantize_bits)
            values: np.ndarray = quantized.codes
            scales: Optional[np.ndarray] = np.asarray(quantized.scale)
            weight_bits = quantize_bits
        else:
            values = layer.values
            scales = None
            weight_bits = 32
        bundle.layers[name] = LayerBundle(
            codes=layer.codes,
            values=values,
            scales=scales,
            patterns=layer.codebook.patterns,
            shape=layer.shape,
            weight_bits=weight_bits,
        )
    return bundle
