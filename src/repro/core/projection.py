"""Projection operators Pi of the PCNN optimisation (Eq. (1)).

Two Euclidean projections are used by the learning framework:

- :func:`project_topn` — onto "at most n non-zeros per kernel" (the
  unconstrained-pattern case, used before distillation and in ADMM's
  first phase): keep the top-n absolute values of each kernel.
- :func:`project_to_patterns` — onto the distilled pattern set ``P_l``:
  for each kernel pick the pattern retaining maximal energy and zero the
  rest. This is exactly ``Pi^{w_lj}_{P_l}`` in Eq. (1).

Both are vectorised over all kernels of a layer.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .patterns import best_pattern_indices, patterns_to_bit_matrix

__all__ = ["project_topn", "project_to_patterns", "projection_error"]


def project_topn(weight: np.ndarray, n: int) -> np.ndarray:
    """Keep the ``n`` largest-magnitude entries of each kernel.

    Parameters
    ----------
    weight:
        Conv weight ``(C_out, C_in, k, k)`` (or any ``(..., k, k)``).
    n:
        Non-zeros to keep per kernel.
    """
    k2 = weight.shape[-1] * weight.shape[-2]
    if n >= k2:
        return weight.copy()
    kernels = weight.reshape(-1, k2)
    if n <= 0:
        return np.zeros_like(weight)
    # Threshold per kernel at the n-th largest |w|.
    magnitudes = np.abs(kernels)
    # argpartition gives the indices of the top-n entries per row.
    top_idx = np.argpartition(-magnitudes, n - 1, axis=1)[:, :n]
    out = np.zeros_like(kernels)
    rows = np.arange(len(kernels))[:, None]
    out[rows, top_idx] = kernels[rows, top_idx]
    return out.reshape(weight.shape)


def project_to_patterns(
    weight: np.ndarray, patterns: np.ndarray, return_indices: bool = False
):
    """Project each kernel onto the nearest pattern in ``patterns``.

    Returns the projected weight, and optionally the chosen pattern index
    per kernel (flattened ``C_out * C_in`` order).
    """
    c_shape = weight.shape
    k = c_shape[-1]
    kernels = weight.reshape(-1, k * k)
    indices = best_pattern_indices(kernels, patterns, k)
    bits = patterns_to_bit_matrix(patterns, k)
    projected = (kernels * bits[indices]).reshape(c_shape)
    if return_indices:
        return projected, indices
    return projected


def projection_error(weight: np.ndarray, patterns: np.ndarray) -> float:
    """Total squared residual ``sum_j ||w_j - Pi_P(w_j)||^2`` (Eq. (1) objective)."""
    projected = project_to_patterns(weight, patterns)
    return float(((weight - projected) ** 2).sum())
