"""Training and evaluation loops shared by examples, benches and ADMM.

These are thin, deterministic wrappers around :mod:`repro.nn`: one epoch of
mini-batch SGD/Adam, full-set evaluation, and a ``fit`` convenience that
mirrors the paper's pre-train stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .. import nn
from ..data import DataLoader

__all__ = ["TrainHistory", "train_epoch", "evaluate", "fit"]


@dataclass
class TrainHistory:
    """Per-epoch record of a training run."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0


def train_epoch(
    model: nn.Module,
    loader: DataLoader,
    optimizer: nn.Optimizer,
    grad_hook: Optional[Callable[[], None]] = None,
) -> float:
    """One epoch of cross-entropy training; returns mean batch loss.

    ``grad_hook`` is invoked after ``backward`` and before the optimiser
    step — the ADMM fine-tuner uses it to add the proximal penalty
    gradient ``rho (W - Z + U)``.
    """
    model.train()
    losses = []
    for images, labels in loader:
        optimizer.zero_grad()
        logits = model(nn.Tensor(images))
        loss = nn.cross_entropy(logits, labels)
        loss.backward()
        if grad_hook is not None:
            grad_hook()
        optimizer.step()
        losses.append(loss.item())
    return float(np.mean(losses)) if losses else 0.0


def evaluate(model: nn.Module, images: np.ndarray, labels: np.ndarray, batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` over a full array dataset."""
    model.eval()
    correct = 0
    with nn.no_grad():
        for start in range(0, len(images), batch_size):
            batch = images[start : start + batch_size]
            target = labels[start : start + batch_size]
            logits = model(nn.Tensor(batch))
            correct += int((logits.data.argmax(axis=1) == target).sum())
    return correct / len(images)


def fit(
    model: nn.Module,
    loader: DataLoader,
    epochs: int,
    lr: float = 0.01,
    optimizer: Optional[nn.Optimizer] = None,
    eval_data=None,
    grad_hook: Optional[Callable[[], None]] = None,
    epoch_hook: Optional[Callable[[int], None]] = None,
) -> TrainHistory:
    """Train ``model`` for ``epochs``; optionally evaluate each epoch.

    Parameters
    ----------
    eval_data:
        Optional ``(images, labels)`` pair for per-epoch accuracy.
    epoch_hook:
        Called with the epoch index after every epoch — ADMM uses it for
        the Z/U dual updates.
    """
    optimizer = optimizer or nn.Adam(model.parameters(), lr=lr)
    history = TrainHistory()
    for epoch in range(epochs):
        loss = train_epoch(model, loader, optimizer, grad_hook=grad_hook)
        history.losses.append(loss)
        if eval_data is not None:
            history.accuracies.append(evaluate(model, eval_data[0], eval_data[1]))
        if epoch_hook is not None:
            epoch_hook(epoch)
    return history
