"""Per-layer pruning sensitivity analysis.

The paper's "various settings" (Tables I/II footnotes) keep a milder ``n``
in the first layer(s): ``2-1-1-...-1`` for VGG-16 and ``2-2-2-1-...`` for
ResNet-18, because early layers are more accuracy-sensitive. This module
provides the analysis that produces such configs: prune one layer at a
time (one-shot top-n projection, no retraining), measure the accuracy
drop, and allocate each layer the largest ``n``-reduction its sensitivity
allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from .config import LayerConfig, PCNNConfig
from .projection import project_topn
from .train import evaluate

__all__ = ["LayerSensitivity", "sensitivity_scan", "suggest_config"]


@dataclass
class LayerSensitivity:
    """Accuracy impact of pruning one layer in isolation."""

    name: str
    accuracy_drop: Dict[int, float]  # n -> (baseline_acc - pruned_acc)

    def max_tolerable_n(self, budget: float, candidates: Sequence[int] = (1, 2, 3, 4)) -> int:
        """Smallest n whose one-shot drop stays within ``budget``."""
        for n in sorted(candidates):
            if self.accuracy_drop.get(n, np.inf) <= budget:
                return n
        return max(candidates)


def sensitivity_scan(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    ns: Sequence[int] = (1, 2, 4),
    kernel_size: int = 3,
) -> List[LayerSensitivity]:
    """One-shot sensitivity of every 3x3 conv layer.

    For each layer and each candidate ``n``: project that layer's weights
    to top-n (leaving every other layer dense), evaluate, restore. The
    model is returned unchanged.
    """
    convs = [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, nn.Conv2d) and module.kernel_size == kernel_size
    ]
    baseline = evaluate(model, images, labels)
    results = []
    for name, module in convs:
        original = module.weight.data.copy()
        drops: Dict[int, float] = {}
        for n in ns:
            module.weight.data[...] = project_topn(original, n)
            drops[n] = baseline - evaluate(model, images, labels)
        module.weight.data[...] = original
        results.append(LayerSensitivity(name=name, accuracy_drop=drops))
    return results


def suggest_config(
    sensitivities: Sequence[LayerSensitivity],
    budget: float = 0.02,
    candidates: Sequence[int] = (1, 2, 3, 4),
    num_patterns: Optional[Dict[int, int]] = None,
) -> PCNNConfig:
    """Build a per-layer config from a sensitivity scan.

    Each layer gets the smallest ``n`` whose one-shot accuracy drop is
    within ``budget`` — reproducing the shape of the paper's "various"
    settings (sensitive early layers keep larger n).
    """
    from .config import DEFAULT_PATTERN_BUDGET
    from .patterns import pattern_count

    budgets = dict(DEFAULT_PATTERN_BUDGET)
    if num_patterns:
        budgets.update(num_patterns)
    layers = []
    for sensitivity in sensitivities:
        n = sensitivity.max_tolerable_n(budget, candidates)
        cap = min(budgets.get(n, 32), pattern_count(n, 3))
        layers.append(LayerConfig(n, cap))
    return PCNNConfig(layers)
