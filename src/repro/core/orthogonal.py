"""Orthogonal coarse-grained pruning, fused with PCNN (Sec. IV-D).

The paper demonstrates PCNN composes with:

- *kernel-level (2D) pruning* — remove whole ``k x k`` kernels (Table VII:
  PCNN n=5 at 1.8x fused with 2.4x / 4.1x kernel pruning gives 4.4x / 7.3x);
- *channel-level (3D) pruning* — remove whole output channels (Table VIII:
  3.75x PCNN x 9x channel pruning = 34.4x fused).

This module provides both the mask-level implementations (operating on a
real model, composing multiplicatively with PCNN masks) and the accounting
that regenerates the fused compression columns.
"""

from __future__ import annotations

from math import sqrt
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..models.flops import ModelProfile
from .compression import CompressionReport, LayerCompression, spm_index_bits
from .config import PCNNConfig

__all__ = [
    "kernel_pruning_mask",
    "channel_pruning_mask",
    "apply_kernel_pruning",
    "apply_channel_pruning",
    "combine_masks",
    "fused_kernel_report",
    "fused_channel_report",
    "channel_keep_for_rate",
]


# ----------------------------------------------------------------------
# Mask-level implementations
# ----------------------------------------------------------------------
def kernel_pruning_mask(weight: np.ndarray, keep_fraction: float) -> np.ndarray:
    """Keep the ``keep_fraction`` of kernels with largest L2 norm.

    Kernel-level (2D) granularity: a kernel is one ``(k, k)`` slice for a
    specific (out_channel, in_channel) pair.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    c_out, c_in, kh, kw = weight.shape
    norms = np.linalg.norm(weight.reshape(c_out * c_in, -1), axis=1)
    keep = max(1, int(round(keep_fraction * norms.size)))
    threshold_idx = np.argsort(-norms)[:keep]
    mask = np.zeros(c_out * c_in)
    mask[threshold_idx] = 1.0
    return np.repeat(mask, kh * kw).reshape(weight.shape)


def channel_pruning_mask(weight: np.ndarray, keep_fraction: float) -> np.ndarray:
    """Keep the ``keep_fraction`` of output channels with largest L1 norm.

    Channel/filter-level (3D) granularity as in filter pruning [18] /
    slimming [19].
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    c_out = weight.shape[0]
    norms = np.abs(weight).reshape(c_out, -1).sum(axis=1)
    keep = max(1, int(round(keep_fraction * c_out)))
    kept = np.argsort(-norms)[:keep]
    mask = np.zeros(weight.shape)
    mask[kept] = 1.0
    return mask


def combine_masks(*masks: Optional[np.ndarray]) -> Optional[np.ndarray]:
    """Elementwise product of masks (None entries are identity)."""
    result: Optional[np.ndarray] = None
    for mask in masks:
        if mask is None:
            continue
        result = mask.copy() if result is None else result * mask
    return result


def _prunable_convs(model: nn.Module, kernel_size: int = 3) -> List[Tuple[str, nn.Conv2d]]:
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, nn.Conv2d) and module.kernel_size == kernel_size
    ]


def apply_kernel_pruning(
    model: nn.Module, keep_fraction: float, kernel_size: int = 3
) -> Dict[str, np.ndarray]:
    """Install kernel-level masks on all 3x3 convs, composing with any
    existing mask (e.g. a PCNN pattern mask). Returns the combined masks."""
    masks = {}
    for name, module in _prunable_convs(model, kernel_size):
        kernel_mask = kernel_pruning_mask(module.weight.data, keep_fraction)
        combined = combine_masks(module.weight_mask, kernel_mask)
        module.set_weight_mask(combined)
        masks[name] = combined
    return masks


def apply_channel_pruning(
    model: nn.Module, keep_fraction: float, kernel_size: int = 3
) -> Dict[str, np.ndarray]:
    """Install channel-level masks on all 3x3 convs (composes like above)."""
    masks = {}
    for name, module in _prunable_convs(model, kernel_size):
        channel_mask = channel_pruning_mask(module.weight.data, keep_fraction)
        combined = combine_masks(module.weight_mask, channel_mask)
        module.set_weight_mask(combined)
        masks[name] = combined
    return masks


# ----------------------------------------------------------------------
# Fused compression accounting (Tables VII / VIII)
# ----------------------------------------------------------------------
def fused_kernel_report(
    profile: ModelProfile,
    config: PCNNConfig,
    kernel_keep_fraction: float,
    setting: Optional[str] = None,
    weight_bits: int = 32,
) -> CompressionReport:
    """PCNN + kernel pruning: surviving kernels hold n weights + one SPM
    code; removed kernels cost nothing (a kernel bitmap is negligible and
    folded into the keep-fraction bookkeeping, as in the paper)."""
    prunable = profile.prunable(kernel_size=config.kernel_size)
    config.validate_for(len(prunable))
    prunable_names = {c.name for c in prunable}
    layers: List[LayerCompression] = []
    cfg_iter = iter(config)
    for conv in profile.convs:
        if conv.name in prunable_names:
            layer_cfg = next(cfg_iter)
            kept_kernels = max(1, int(round(conv.kernels * kernel_keep_fraction)))
            # Accounting trick: express the fused layer as `kept` kernels of
            # n non-zeros against the *dense* baseline of conv.kernels
            # kernels. LayerCompression assumes a common kernel count for
            # both, so scale n by the keep fraction instead.
            layers.append(
                LayerCompression(
                    name=conv.name,
                    kernels=conv.kernels,
                    kernel_area=conv.kernel_size**2,
                    n_nonzero=layer_cfg.n * kept_kernels / conv.kernels,
                    index_bits_per_kernel=spm_index_bits(layer_cfg.num_patterns)
                    * kept_kernels
                    / conv.kernels,
                    dense_macs=conv.macs,
                    pruned=True,
                )
            )
        else:
            layers.append(
                LayerCompression(
                    name=conv.name,
                    kernels=conv.kernels,
                    kernel_area=conv.kernel_size**2,
                    n_nonzero=conv.kernel_size**2,
                    index_bits_per_kernel=0.0,
                    dense_macs=conv.macs,
                    pruned=False,
                )
            )
    label = setting or f"{config.describe()} + kernel keep={kernel_keep_fraction:.2f}"
    return CompressionReport(profile.model_name, label, layers, weight_bits=weight_bits)


def channel_keep_for_rate(rate: float) -> float:
    """Per-layer channel keep fraction giving ~``rate``x channel compression.

    Pruning output channels to fraction ``f`` shrinks layer ``l`` by ``f``
    and layer ``l+1``'s input side by ``f`` again, so interior-layer weight
    count scales as ``f^2``; ``f = 1/sqrt(rate)``.
    """
    if rate < 1.0:
        raise ValueError("rate must be >= 1")
    return 1.0 / sqrt(rate)


def fused_channel_report(
    profile: ModelProfile,
    config: PCNNConfig,
    channel_keep_fraction: float,
    setting: Optional[str] = None,
    weight_bits: int = 32,
    prune_input_side: bool = True,
) -> CompressionReport:
    """PCNN + channel pruning: kernels surviving both output-channel and
    (downstream) input-channel removal hold n weights + one SPM code."""
    prunable = profile.prunable(kernel_size=config.kernel_size)
    config.validate_for(len(prunable))
    prunable_names = {c.name for c in prunable}
    layers: List[LayerCompression] = []
    cfg_iter = iter(config)
    first_prunable = True
    for conv in profile.convs:
        if conv.name in prunable_names:
            layer_cfg = next(cfg_iter)
            out_keep = channel_keep_fraction
            # The first conv's input is the image — its input side survives.
            in_keep = 1.0 if (first_prunable or not prune_input_side) else channel_keep_fraction
            first_prunable = False
            kernel_keep = out_keep * in_keep
            layers.append(
                LayerCompression(
                    name=conv.name,
                    kernels=conv.kernels,
                    kernel_area=conv.kernel_size**2,
                    n_nonzero=layer_cfg.n * kernel_keep,
                    index_bits_per_kernel=spm_index_bits(layer_cfg.num_patterns) * kernel_keep,
                    dense_macs=conv.macs,
                    pruned=True,
                )
            )
        else:
            layers.append(
                LayerCompression(
                    name=conv.name,
                    kernels=conv.kernels,
                    kernel_area=conv.kernel_size**2,
                    n_nonzero=conv.kernel_size**2,
                    index_bits_per_kernel=0.0,
                    dense_macs=conv.macs,
                    pruned=False,
                )
            )
    label = setting or f"{config.describe()} + channel keep={channel_keep_fraction:.2f}"
    return CompressionReport(profile.model_name, label, layers, weight_bits=weight_bits)
