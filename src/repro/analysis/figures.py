"""ASCII figure rendering (Fig. 2 histogram, speedup curves)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["histogram_ascii", "series_ascii", "pattern_frequency_figure"]


def histogram_ascii(
    values: Sequence[float],
    labels: Optional[Sequence[str]] = None,
    width: int = 50,
    max_rows: Optional[int] = None,
) -> str:
    """Horizontal bar histogram, tallest first."""
    values = np.asarray(values, dtype=float)
    order = np.argsort(-values)
    if max_rows is not None:
        order = order[:max_rows]
    peak = values.max() if values.size else 1.0
    lines = []
    for index in order:
        label = labels[index] if labels is not None else str(index)
        bar = "#" * max(0, round(values[index] / peak * width)) if peak > 0 else ""
        lines.append(f"{label:>8} |{bar} {values[index]:g}")
    return "\n".join(lines)


def pattern_frequency_figure(
    frequencies: np.ndarray, top: int = 20, width: int = 50
) -> str:
    """Fig. 2: nearest-pattern frequency over the candidate set.

    Shows the ``top`` dominant patterns and summarises the trivial tail —
    the visual argument for pattern distillation.
    """
    frequencies = np.asarray(frequencies)
    order = np.argsort(-frequencies)
    head = order[:top]
    tail = order[top:]
    lines = [
        f"Pattern frequency distribution ({len(frequencies)} candidate patterns)",
        f"dominant (top {len(head)}):",
    ]
    peak = frequencies.max() if frequencies.size else 1
    for index in head:
        bar = "#" * max(1, round(frequencies[index] / peak * width)) if frequencies[index] else ""
        lines.append(f"  p{index:>4} |{bar} {frequencies[index]}")
    if len(tail):
        lines.append(
            f"trivial tail: {len(tail)} patterns, "
            f"{frequencies[tail].sum()} kernels total "
            f"({frequencies[tail].sum() / max(frequencies.sum(), 1):.1%} of kernels)"
        )
    return "\n".join(lines)


def series_ascii(
    series: Dict[str, Dict[float, float]],
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Aligned multi-series listing (x -> value bars), e.g. speedup vs n."""
    lines = []
    peak = max(v for points in series.values() for v in points.values())
    for name, points in series.items():
        lines.append(name)
        for x in sorted(points):
            value = points[x]
            bar = "#" * max(1, round(value / peak * width))
            lines.append(f"  {x:>8} |{bar} " + value_format.format(value))
    return "\n".join(lines)
