"""PCNN invariant validation for pruned models.

A downstream user about to ship a pruned model wants a single call that
checks everything the hardware assumes: equal per-kernel non-zeros within
each layer, masks consistent with weights, pattern counts within the SPM
budget, and kernel sizes the architecture supports. ``validate_model``
returns a structured report; ``assert_valid`` raises with a precise
message on the first violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import nn
from ..core.masks import kernel_nonzeros
from ..core.patterns import mask_to_pattern

__all__ = ["LayerValidation", "ValidationReport", "validate_model", "assert_valid"]


@dataclass
class LayerValidation:
    """Validation outcome for one conv layer."""

    name: str
    pruned: bool
    n_nonzero: Optional[int]
    distinct_patterns: Optional[int]
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class ValidationReport:
    """Whole-model validation outcome."""

    layers: List[LayerValidation]

    @property
    def ok(self) -> bool:
        return all(layer.ok for layer in self.layers)

    @property
    def problems(self) -> List[str]:
        return [f"{layer.name}: {p}" for layer in self.layers for p in layer.problems]

    def summary(self) -> str:
        lines = []
        for layer in self.layers:
            if not layer.pruned:
                lines.append(f"{layer.name}: dense (no mask)")
                continue
            status = "OK" if layer.ok else "; ".join(layer.problems)
            lines.append(
                f"{layer.name}: n={layer.n_nonzero}, "
                f"{layer.distinct_patterns} patterns -> {status}"
            )
        return "\n".join(lines)


def validate_model(
    model: nn.Module, max_patterns: Optional[int] = None, kernel_size: int = 3
) -> ValidationReport:
    """Check PCNN invariants on every 3x3 conv of ``model``.

    Parameters
    ----------
    max_patterns:
        Optional SPM budget; flags layers using more distinct patterns.
    """
    layers: List[LayerValidation] = []
    for name, module in model.named_modules():
        if not isinstance(module, nn.Conv2d) or module.kernel_size != kernel_size:
            continue
        mask = module.weight_mask
        if mask is None:
            layers.append(
                LayerValidation(name=name, pruned=False, n_nonzero=None, distinct_patterns=None)
            )
            continue
        problems: List[str] = []
        counts = kernel_nonzeros(mask)
        unique_counts = np.unique(counts)
        n_value = int(unique_counts[0]) if len(unique_counts) == 1 else None
        if len(unique_counts) != 1:
            problems.append(
                f"unequal per-kernel non-zeros {sorted(unique_counts.tolist())} "
                "(PCNN requires identical sparsity per layer)"
            )
        # Weights must vanish off-mask.
        off_mask = module.weight.data * (1 - mask)
        if np.abs(off_mask).max() > 0:
            problems.append("non-zero weights outside the mask")
        if not np.isfinite(module.weight.data).all():
            problems.append("non-finite weights")
        # Distinct patterns actually used.
        k2 = kernel_size * kernel_size
        kernels = mask.reshape(-1, k2)
        patterns = {mask_to_pattern(kernel.reshape(kernel_size, kernel_size)) for kernel in kernels}
        if max_patterns is not None and len(patterns) > max_patterns:
            problems.append(
                f"{len(patterns)} distinct patterns exceed the SPM budget {max_patterns}"
            )
        layers.append(
            LayerValidation(
                name=name,
                pruned=True,
                n_nonzero=n_value,
                distinct_patterns=len(patterns),
                problems=problems,
            )
        )
    return ValidationReport(layers=layers)


def assert_valid(model: nn.Module, max_patterns: Optional[int] = None) -> None:
    """Raise ``AssertionError`` with all problems if validation fails."""
    report = validate_model(model, max_patterns=max_patterns)
    if not report.ok:
        raise AssertionError("PCNN validation failed:\n" + "\n".join(report.problems))
