"""repro.analysis — table/figure rendering and experiment logging."""

from .figures import histogram_ascii, pattern_frequency_figure, series_ascii
from .report import ExperimentLog, ExperimentRecord, Measurement
from .tables import format_compression_table, format_markdown_table, format_table
from .validation import LayerValidation, ValidationReport, assert_valid, validate_model

__all__ = [
    "LayerValidation",
    "ValidationReport",
    "validate_model",
    "assert_valid",
    "format_table",
    "format_markdown_table",
    "format_compression_table",
    "histogram_ascii",
    "pattern_frequency_figure",
    "series_ascii",
    "Measurement",
    "ExperimentRecord",
    "ExperimentLog",
]
