"""Paper-style table rendering for benches and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_compression_table", "format_markdown_table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1e5 or (0 < abs(value) < 1e-2):
            return f"{value:.3e}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table with a header rule."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(v) for v in row) + " |")
    return "\n".join(lines)


def format_compression_table(reports, title: Optional[str] = None) -> str:
    """Render CompressionReports with the paper's Table I-III columns."""
    headers = [
        "Benchmark",
        "CONV FLOPs",
        "FLOPs Pruned",
        "CONV Params",
        "Compr (weight)",
        "Compr (weight+idx)",
    ]
    rows = []
    for report in reports:
        row = report.summary_row()
        rows.append(
            [
                row["benchmark"],
                f"{row['conv_flops']:.2e}",
                f"{row['flops_pruned_pct']:.1f}%",
                f"{row['conv_params']:.2e}",
                f"{row['compression_weight']:.1f}x",
                f"{row['compression_weight_idx']:.1f}x",
            ]
        )
    return format_table(headers, rows, title=title)
