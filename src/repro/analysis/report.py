"""Paper-vs-measured record keeping for EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from .tables import format_markdown_table

__all__ = ["Measurement", "ExperimentRecord", "ExperimentLog"]


@dataclass
class Measurement:
    """One paper-vs-measured comparison point."""

    metric: str
    paper: Union[float, str]
    measured: Union[float, str]
    note: str = ""

    @property
    def relative_error(self) -> Optional[float]:
        try:
            paper = float(self.paper)
            measured = float(self.measured)
        except (TypeError, ValueError):
            return None
        if paper == 0:
            return None
        return abs(measured - paper) / abs(paper)


@dataclass
class ExperimentRecord:
    """All measurements of one table/figure reproduction."""

    experiment_id: str  # e.g. "Table I"
    description: str
    measurements: List[Measurement] = field(default_factory=list)

    def add(self, metric: str, paper, measured, note: str = "") -> None:
        self.measurements.append(Measurement(metric, paper, measured, note))

    def to_markdown(self) -> str:
        headers = ["metric", "paper", "measured", "rel. err", "note"]
        rows = []
        for m in self.measurements:
            err = m.relative_error
            rows.append(
                [m.metric, m.paper, m.measured, f"{err:.1%}" if err is not None else "-", m.note]
            )
        return f"### {self.experiment_id} — {self.description}\n\n" + format_markdown_table(
            headers, rows
        )


@dataclass
class ExperimentLog:
    """Collection of experiment records, rendered into EXPERIMENTS.md."""

    records: List[ExperimentRecord] = field(default_factory=list)

    def record(self, experiment_id: str, description: str) -> ExperimentRecord:
        rec = ExperimentRecord(experiment_id, description)
        self.records.append(rec)
        return rec

    def to_markdown(self, title: str = "Experiments: paper vs measured") -> str:
        parts = [f"# {title}", ""]
        for rec in self.records:
            parts.append(rec.to_markdown())
            parts.append("")
        return "\n".join(parts)
