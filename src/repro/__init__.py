"""repro — full reproduction of PCNN (DAC 2020).

PCNN: Pattern-based Fine-Grained Regular Pruning Towards Optimizing CNN
Accelerators. The package is organised as:

- :mod:`repro.nn` — numpy autograd neural-network framework (substrate).
- :mod:`repro.models` — VGG-16 / ResNet-18 / PatternNet model zoo.
- :mod:`repro.data` — synthetic dataset generators and loaders.
- :mod:`repro.core` — the PCNN algorithm: patterns, SPM encoding,
  KP-based pattern distillation, ADMM fine-tuning, compression accounting,
  orthogonal (kernel/channel) pruning and baselines.
- :mod:`repro.runtime` — unified conv execution engine: pluggable
  backends (dense GEMM / pattern-sparse / tiled), cached execution plans
  and the batched ``predict()`` inference API.
- :mod:`repro.serving` — dynamic-batching model server: request
  coalescing, multi-model registry (bundles or registry names), JSON
  endpoint, latency/batch statistics.
- :mod:`repro.arch` — the pattern-aware accelerator: memory layout, SPM
  decoder, sparsity pointer generation, PE group, cycle-level simulator and
  area/power model.
- :mod:`repro.analysis` — paper-style table and figure rendering.

See DESIGN.md for the system inventory and the per-experiment index, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "models",
    "data",
    "core",
    "runtime",
    "serving",
    "arch",
    "analysis",
    "utils",
]
