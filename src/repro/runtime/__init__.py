"""repro.runtime — unified conv execution engine.

One shared, plan-caching execution layer for every convolution in the
reproduction (nn forward passes, SPM-encoded inference, deployment
bundles, the accelerator simulator's functional path):

- :func:`dispatch` — single entry point; selects a backend from layer
  shape + encoding and executes through a cached
  :class:`ExecutionPlan`.
- :class:`ConvBackend` registry — ``dense`` (im2col + GEMM reference),
  ``pattern`` (fused gather over SPM storage), ``tiled`` (bounded-memory
  GEMM for large inputs); :func:`register_backend` adds more.
- :class:`PlanCache` — memoizes per-geometry planning; pattern gather
  indices are additionally cached on each
  :class:`~repro.core.spm.EncodedLayer`.
- :func:`predict` — batched inference with configurable micro-batch
  splitting, thread-pool ``workers=``, and ``compile=True``.
- :func:`compile_model` / :class:`CompiledModel` — the compiled serving
  pipeline: BN folding, fused bias/ReLU epilogues
  (:class:`Epilogue`), one-time float32 cast, and per-thread
  zero-allocation buffer :class:`Arena` workspaces.
- :mod:`repro.runtime.quant` — the int8 execution path:
  ``compile_model(quantize="int8", calibration=batch)`` runs the conv
  trunk on integer weight/activation codes with requantizing epilogues
  and per-layer float fallback (:class:`QuantizationConfig`); the
  ``"quant"`` engine backend is the zero-setup eager variant.
"""

from .arena import Arena, ArenaStats
from .backends import (
    ConvBackend,
    DenseGemmBackend,
    Epilogue,
    PatternSparseBackend,
    TiledBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .compile import CompiledModel, compile_model, fold_batchnorm
from .engine import ConvRequest, default_cache, dispatch, select_backend
from .plan import ExecutionPlan, PlanCache, PlanCacheStats
from .predict import PredictStats, conv_backend_override, predict
from .quant import (
    QuantizationConfig,
    QuantizationReport,
    QuantizedBackend,
    resolve_quantization,
)

__all__ = [
    "Arena",
    "ArenaStats",
    "ConvBackend",
    "Epilogue",
    "DenseGemmBackend",
    "PatternSparseBackend",
    "TiledBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "CompiledModel",
    "compile_model",
    "fold_batchnorm",
    "ConvRequest",
    "dispatch",
    "select_backend",
    "default_cache",
    "ExecutionPlan",
    "PlanCache",
    "PlanCacheStats",
    "PredictStats",
    "predict",
    "conv_backend_override",
    "QuantizationConfig",
    "QuantizationReport",
    "QuantizedBackend",
    "resolve_quantization",
]
