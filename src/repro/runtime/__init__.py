"""repro.runtime — unified conv execution engine.

One shared, plan-caching execution layer for every convolution in the
reproduction (nn forward passes, SPM-encoded inference, deployment
bundles, the accelerator simulator's functional path):

- :func:`dispatch` — single entry point; selects a backend from layer
  shape + encoding and executes through a cached
  :class:`ExecutionPlan`.
- :class:`ConvBackend` registry — ``dense`` (im2col + GEMM reference),
  ``pattern`` (fused gather over SPM storage), ``tiled`` (bounded-memory
  GEMM for large inputs); :func:`register_backend` adds more.
- :class:`PlanCache` — memoizes per-geometry planning; pattern gather
  indices are additionally cached on each
  :class:`~repro.core.spm.EncodedLayer`.
- :func:`predict` — batched inference with configurable micro-batch
  splitting.
"""

from .backends import (
    ConvBackend,
    DenseGemmBackend,
    PatternSparseBackend,
    TiledBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .engine import ConvRequest, default_cache, dispatch, select_backend
from .plan import ExecutionPlan, PlanCache, PlanCacheStats
from .predict import PredictStats, conv_backend_override, predict

__all__ = [
    "ConvBackend",
    "DenseGemmBackend",
    "PatternSparseBackend",
    "TiledBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "ConvRequest",
    "dispatch",
    "select_backend",
    "default_cache",
    "ExecutionPlan",
    "PlanCache",
    "PlanCacheStats",
    "PredictStats",
    "predict",
    "conv_backend_override",
]
