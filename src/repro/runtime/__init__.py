"""repro.runtime — unified conv execution engine.

One shared, plan-caching execution layer for every convolution in the
reproduction (nn forward passes, SPM-encoded inference, deployment
bundles, the accelerator simulator's functional path):

- :func:`dispatch` — single entry point; selects a backend from layer
  shape + encoding and executes through a cached
  :class:`ExecutionPlan`.
- :class:`ConvBackend` registry — ``dense`` (im2col + GEMM reference),
  ``pattern`` (fused gather over SPM storage), ``tiled`` (bounded-memory
  GEMM for large inputs), ``winograd`` (F(m x m, 3x3) transform-domain
  conv for 3x3/stride-1); :func:`register_backend` adds more.
- :class:`PlanCache` — memoizes per-geometry planning; pattern gather
  indices are additionally cached on each
  :class:`~repro.core.spm.EncodedLayer`.
- :func:`predict` — batched inference with configurable micro-batch
  splitting, thread-pool ``workers=``, and ``compile=True``.
- :func:`compile_model` / :class:`CompiledModel` — the compiled serving
  pipeline: the model lowers onto a small graph IR
  (:class:`Graph`, :mod:`repro.runtime.ir`) transformed by a validated
  :class:`PassManager` sequence (``lower → fold_bn → fuse_epilogues →
  winograd → [tune] → [quantize] → link_halos → assign_arenas →
  finalize``) into
  BN-folded, epilogue-fused, channels-last ops over per-thread
  zero-allocation :class:`Arena` workspaces.
- :mod:`repro.runtime.tune` — backend-selection policy and the
  cost-model/autotune pass: ``compile_model(tune="cost")`` ranks
  per-layer schedules with the analytic accelerator model,
  ``tune="measure"`` times the top candidates and persists winners in
  the :class:`TuningCache` (``~/.cache/repro-tune.json``).
- :mod:`repro.runtime.quant` — the int8 execution path:
  ``compile_model(quantize="int8", calibration=batch)`` runs the conv
  trunk on integer weight/activation codes with requantizing epilogues
  and per-layer float fallback (:class:`QuantizationConfig`); the
  ``"quant"`` engine backend is the zero-setup eager variant.
"""

from .arena import Arena, ArenaStats
from .backends import (
    ConvBackend,
    DenseGemmBackend,
    Epilogue,
    PatternSparseBackend,
    TiledBackend,
    WinogradBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .compile import CompiledModel, compile_model, fold_batchnorm
from .engine import ConvRequest, default_cache, dispatch, select_backend
from .ir import Graph, GraphError, Node, TensorMeta
from .passes import (
    PASS_REGISTRY,
    CompileContext,
    Pass,
    PassManager,
    PassRecord,
    default_passes,
)
from .plan import ExecutionPlan, PlanCache, PlanCacheStats
from .predict import PredictStats, conv_backend_override, predict
from .quant import (
    QuantizationConfig,
    QuantizationReport,
    QuantizedBackend,
    resolve_quantization,
)
from .shm import SharedModelImage, TensorRing
from .tune import (
    ConvSchedule,
    TuningCache,
    TuningCacheStats,
    TuningReport,
    effective_cpu_count,
    get_tuning_cache,
)
from .workerpool import BrokenWorkerPool, WorkerCrashed, WorkerPool

__all__ = [
    "Arena",
    "ArenaStats",
    "ConvBackend",
    "Epilogue",
    "DenseGemmBackend",
    "PatternSparseBackend",
    "TiledBackend",
    "WinogradBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "CompiledModel",
    "compile_model",
    "fold_batchnorm",
    "ConvRequest",
    "dispatch",
    "select_backend",
    "default_cache",
    "ExecutionPlan",
    "PlanCache",
    "PlanCacheStats",
    "PredictStats",
    "predict",
    "conv_backend_override",
    "QuantizationConfig",
    "QuantizationReport",
    "QuantizedBackend",
    "resolve_quantization",
    "Graph",
    "GraphError",
    "Node",
    "TensorMeta",
    "Pass",
    "PassManager",
    "PassRecord",
    "PASS_REGISTRY",
    "CompileContext",
    "default_passes",
    "ConvSchedule",
    "TuningCache",
    "TuningCacheStats",
    "TuningReport",
    "effective_cpu_count",
    "get_tuning_cache",
    "SharedModelImage",
    "TensorRing",
    "WorkerPool",
    "WorkerCrashed",
    "BrokenWorkerPool",
]
