"""Unified conv execution engine — the single entry point for every
convolution in the repo.

:func:`dispatch` selects a registered :class:`~repro.runtime.backends.ConvBackend`
from the request's shape and encoding (explicit override wins), pulls the
memoized :class:`~repro.runtime.plan.ExecutionPlan` for the geometry from
the process-wide :data:`default_cache`, executes, and applies bias +
NCHW reshape uniformly so all backends are bit-comparable.

Selection policy (first match):

1. an SPM encoding is present → ``pattern`` (compute from sparse storage);
2. the monolithic im2col workspace would exceed the tiling threshold →
   ``tiled``;
3. otherwise → ``dense`` (BLAS GEMM reference path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from .backends import Epilogue, get_backend
from .plan import ExecutionPlan, PlanCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.spm import EncodedLayer

__all__ = ["ConvRequest", "dispatch", "select_backend", "default_cache"]

#: Process-wide plan cache shared by every dispatch() call that does not
#: bring its own. Keys are pure geometry, so it never goes stale.
default_cache = PlanCache()


@dataclass
class ConvRequest:
    """One convolution to execute: input + (weight | SPM encoding)."""

    x: np.ndarray
    weight: Optional[np.ndarray] = None
    encoded: Optional["EncodedLayer"] = None
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if self.weight is None and self.encoded is None:
            raise ValueError("ConvRequest needs a weight or an encoded layer")
        if self.x.ndim != 4:
            raise ValueError(f"input must be (N, C, H, W), got shape {self.x.shape}")
        c_in = self.weight_shape[1]
        if self.x.shape[1] != c_in:
            raise ValueError(
                f"channel mismatch: input {self.x.shape[1]} vs weights {c_in}"
            )

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        """Filter shape ``(C_out, C_in, KH, KW)``, from weight or encoding."""
        if self.weight is not None:
            return tuple(self.weight.shape)  # type: ignore[return-value]
        return self.encoded.shape


def select_backend(request: ConvRequest) -> str:
    """Pick a backend name from the request's encoding and geometry.

    Delegates to :func:`repro.runtime.tune.select_backend` — the single
    home of every backend-selection rule (kept as an alias here because
    this is where callers historically imported it from).
    """
    from .tune import select_backend as _select

    return _select(request)


def _accepts_epilogue(impl) -> bool:
    """Whether a backend's ``execute`` takes the ``epilogue=`` hook.

    Checked once per backend instance (memoized on the instance) so
    pre-hook backends registered by downstream code keep working.
    """
    cached = getattr(impl, "_accepts_epilogue", None)
    if cached is None:
        import inspect

        try:
            cached = "epilogue" in inspect.signature(impl.execute).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            cached = False
        try:
            impl._accepts_epilogue = cached
        except AttributeError:  # pragma: no cover - slotted backends
            pass
    return cached


def _plan_key(request: ConvRequest, backend_name: str) -> tuple:
    return (
        backend_name,
        request.x.shape,
        request.weight_shape,
        request.stride,
        request.padding,
    )


def dispatch(
    x: np.ndarray,
    weight: Optional[np.ndarray] = None,
    *,
    encoded: Optional["EncodedLayer"] = None,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
    backend: Optional[str] = None,
    cache: Optional[PlanCache] = None,
    workspace: Optional[dict] = None,
    epilogue: Optional[Epilogue] = None,
) -> np.ndarray:
    """Execute a convolution through the engine.

    Parameters
    ----------
    x:
        Input activations ``(N, C_in, H, W)``.
    weight:
        Dense filters ``(C_out, C_in, KH, KW)``; optional when
        ``encoded`` is given (backends decode on demand).
    encoded:
        SPM-encoded layer; routes to the pattern backend by default.
    bias:
        Optional per-output-channel bias ``(C_out,)``; folded into the
        backend epilogue so the add happens in place on the GEMM output
        instead of allocating a second output-sized array.
    backend:
        Explicit backend name (overrides auto-selection).
    cache:
        Plan cache to use; defaults to the process-wide one.
    workspace:
        Dict to receive backend intermediates (e.g. ``cols`` for the
        autograd backward pass; only honoured by the dense backend) and,
        via ``workspace["arena"]``/``workspace["tag"]``, to hand the
        backend a reusable buffer arena.
    epilogue:
        Pre-built :class:`~repro.runtime.backends.Epilogue` (compiled
        pipeline); mutually exclusive with ``bias``, which builds one.

    Returns
    -------
    Output activations ``(N, C_out, OH, OW)``.
    """
    request = ConvRequest(
        x=x, weight=weight, encoded=encoded, stride=stride, padding=padding
    )
    name = backend or select_backend(request)
    impl = get_backend(name)
    if not impl.supports(request):
        raise ValueError(f"backend {name!r} does not support this request")
    if bias is not None:
        if epilogue is not None and epilogue.bias is not None:
            raise ValueError("pass bias either directly or in the epilogue, not both")
        epilogue = Epilogue(bias=np.asarray(bias), relu=epilogue.relu if epilogue else False)

    plans = default_cache if cache is None else cache
    key = _plan_key(request, name)
    plan = plans.get_or_build(
        key,
        lambda: ExecutionPlan.build(
            key, request.x.shape, request.weight_shape, stride, padding
        ),
    )

    if _accepts_epilogue(impl):
        out = impl.execute(request, plan, workspace=workspace, epilogue=epilogue)
    else:
        # Legacy backend registered without the epilogue hook: run it
        # as-is and apply the epilogue on its output matrix here.
        out = impl.execute(request, plan, workspace=workspace)
        if epilogue is not None:
            epilogue.apply(out)
    oh, ow = plan.out_hw
    return (
        out.reshape(plan.batch, oh, ow, plan.out_channels).transpose(0, 3, 1, 2)
    )
