"""The compile pass pipeline: named transformations over the graph IR.

:func:`repro.runtime.compile_model` builds an empty
:class:`~repro.runtime.ir.Graph` and hands it to a :class:`PassManager`
running the standard sequence::

    lower → fold_bn → fuse_epilogues → winograd → [tune] → [quantize]
          → link_halos → assign_arenas → finalize

Each pass is a named, independently-testable function
``(graph, ctx) -> note`` registered in :data:`PASS_REGISTRY`:

| pass             | what it does                                                |
|------------------|-------------------------------------------------------------|
| ``lower``        | walk the module tree (``lowering_sequence``/``_branches``   |
|                  | hooks) into unfused graph nodes + layout conversions        |
| ``fold_bn``      | fold every conv→BN pair into the conv's weight/bias         |
| ``fuse_epilogues``| absorb a following ReLU into conv/linear/BN epilogues      |
| ``winograd``     | mark eligible 3x3/s1 convs for the F(m,3) fast path         |
| ``tune``         | pick per-conv schedules (cost model or measurement)         |
| ``quantize``     | rewrite eligible convs to the int8 execution form           |
| ``link_halos``   | point producers at their consumer's padded input buffer     |
| ``assign_arenas``| check/record the workspace-tag manifest arenas key on       |
| ``finalize``     | append the exit layout conversion, build GEMM operands,     |
|                  | verify the finished graph                                   |

Passes declare ordering constraints (``after``/``before``);
:class:`PassManager` validates them at construction, so an
out-of-order pipeline (quantize before BN folding, halo linking before
fusion) fails loudly instead of producing a subtly wrong model. After
every pass the graph re-verifies its structural invariants
(:meth:`~repro.runtime.ir.Graph.verify`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import nn
from .ir import Graph, TensorMeta
from .tune import prefer_gather

__all__ = [
    "CompileContext",
    "Pass",
    "PassRecord",
    "PassManager",
    "PASS_REGISTRY",
    "compiler_pass",
    "default_passes",
]


@dataclass
class CompileContext:
    """Everything the passes need to know about one compilation.

    Inputs come from :func:`repro.runtime.compile_model`'s arguments;
    the pass pipeline fills in the output fields (``quant_report``,
    ``tuning_report``, ``arena_manifest``) as it runs.
    """

    model: object
    dtype: Optional[np.dtype] = None
    quantize: Optional[object] = None  # resolved QuantizationConfig
    calibration: Optional[np.ndarray] = None
    tune: Optional[str] = None  # None | "cost" | "measure"
    input_shape: Optional[Tuple[int, ...]] = None  # (C, H, W), for tune
    tuning_cache: Optional[object] = None
    tune_batch: int = 16  # batch the chunk-size tuner measures at
    winograd: bool = True  # let the winograd pass mark eligible convs
    # Outputs:
    quant_report: Optional[object] = None
    tuning_report: Optional[object] = None
    arena_manifest: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._tags = count()

    def next_tag(self) -> str:
        """Fresh unique arena tag for a newly created op."""
        return f"op{next(self._tags)}"


@dataclass(frozen=True)
class Pass:
    """One named graph transformation with ordering constraints.

    ``fn(graph, ctx)`` mutates the graph in place and returns a short
    human-readable note (or ``None``). ``after``/``before`` name passes
    this one must follow/precede *when both appear* in a pipeline —
    :class:`PassManager` enforces them at construction time.
    """

    name: str
    fn: Callable[[Graph, CompileContext], Optional[str]]
    after: Tuple[str, ...] = ()
    before: Tuple[str, ...] = ()


@dataclass
class PassRecord:
    """What one pass did during a compilation (the describe() trace)."""

    name: str
    note: str = ""
    seconds: float = 0.0


#: All registered passes by name (the ``compiler_pass`` decorator fills it).
PASS_REGISTRY: Dict[str, Pass] = {}


def compiler_pass(name: str, after: Tuple[str, ...] = (), before: Tuple[str, ...] = ()):
    """Decorator registering a function as a named compile pass."""

    def register(fn: Callable[[Graph, CompileContext], Optional[str]]) -> Pass:
        compile_pass = Pass(name=name, fn=fn, after=after, before=before)
        PASS_REGISTRY[name] = compile_pass
        return compile_pass

    return register


class PassManager:
    """Runs a validated sequence of passes over one compile graph.

    Construction resolves pass names through :data:`PASS_REGISTRY` and
    enforces every pass's ``after``/``before`` constraints, raising
    ``ValueError`` on an invalid order (the ordering invariants are unit
    tested — ``fold_bn`` must precede ``quantize``, ``link_halos`` must
    follow ``fuse_epilogues``, ``lower`` first, ``finalize`` last).
    :meth:`run` executes the passes, verifying the graph after each one,
    and keeps a :class:`PassRecord` trace for ``CompiledModel.describe``.
    """

    def __init__(self, passes: Sequence[Union[str, Pass]]) -> None:
        self.passes: List[Pass] = []
        for item in passes:
            if isinstance(item, str):
                if item not in PASS_REGISTRY:
                    raise ValueError(
                        f"unknown pass {item!r}; registered: {sorted(PASS_REGISTRY)}"
                    )
                item = PASS_REGISTRY[item]
            self.passes.append(item)
        self._validate_order()
        self.records: List[PassRecord] = []

    def _validate_order(self) -> None:
        position = {p.name: i for i, p in enumerate(self.passes)}
        if len(position) != len(self.passes):
            raise ValueError("duplicate pass in pipeline")
        for p in self.passes:
            for earlier in p.after:
                if earlier in position and position[earlier] > position[p.name]:
                    raise ValueError(
                        f"pass ordering violation: {p.name!r} must run "
                        f"after {earlier!r}"
                    )
            for later in p.before:
                if later in position and position[later] < position[p.name]:
                    raise ValueError(
                        f"pass ordering violation: {p.name!r} must run "
                        f"before {later!r}"
                    )
        if self.passes and "lower" in position and position["lower"] != 0:
            raise ValueError("pass ordering violation: 'lower' must run first")
        if (
            self.passes
            and "finalize" in position
            and position["finalize"] != len(self.passes) - 1
        ):
            raise ValueError("pass ordering violation: 'finalize' must run last")

    def run(self, graph: Graph, ctx: CompileContext) -> Graph:
        """Execute every pass in order, verifying the graph after each."""
        self.records = []
        for compile_pass in self.passes:
            start = time.perf_counter()
            note = compile_pass.fn(graph, ctx)
            graph.verify()
            self.records.append(
                PassRecord(
                    name=compile_pass.name,
                    note=note or "",
                    seconds=time.perf_counter() - start,
                )
            )
        return graph


def default_passes(ctx: CompileContext) -> List[Pass]:
    """The standard pipeline for one context (tune/quantize included
    only when requested, so the trace shows exactly what ran)."""
    names = ["lower", "fold_bn", "fuse_epilogues"]
    if ctx.winograd:
        names.append("winograd")
    if ctx.tune is not None:
        names.append("tune")
    if ctx.quantize is not None:
        names.append("quantize")
    names += ["link_halos", "assign_arenas", "finalize"]
    return [PASS_REGISTRY[name] for name in names]


# ---------------------------------------------------------------------
# lower
# ---------------------------------------------------------------------
@dataclass
class _Residual:
    """Intermediate marker for a two-branch residual step."""

    body: List[object]
    shortcut: List[object]
    relu: bool


def _expand(module: nn.Module) -> List[object]:
    """Expand a module tree into primitive steps and residual markers."""
    if isinstance(module, (nn.Dropout, nn.Identity)):
        return []  # eval-mode no-ops
    if isinstance(module, nn.Sequential):
        return [step for child in module for step in _expand(child)]
    branches = getattr(module, "lowering_branches", None)
    if branches is not None:
        # Hook contract: (body, shortcut) applies ReLU after the add
        # (the classic post-activation block); a 3-tuple
        # (body, shortcut, post_relu) makes the activation explicit for
        # pre-activation-style blocks.
        parts = branches()
        body, shortcut = parts[0], parts[1]
        relu = parts[2] if len(parts) > 2 else True
        return [
            _Residual(
                body=[s for m in body for s in _expand(m)],
                shortcut=[s for m in shortcut for s in _expand(m)],
                relu=relu,
            )
        ]
    sequence = getattr(module, "lowering_sequence", None)
    if sequence is not None:
        return [step for child in sequence() for step in _expand(child)]
    return [module]


def _lower_conv(step: nn.Conv2d, ctx: CompileContext):
    """One conv module -> an unfused ConvOp carrying raw parameters."""
    from .compile import ConvOp

    params = step.inference_params()
    weight, bias, encoded = params["weight"], params["bias"], params["encoded"]
    kh = kw = step.kernel_size
    use_gather = False
    if encoded is not None:
        # Static schedule heuristic (the tune pass may override): gather
        # only when the grouped contraction is narrower than the dense
        # one (see repro.runtime.tune.GATHER_WIDTH_LIMIT).
        use_gather = prefer_gather(encoded, kh * kw)
    return ConvOp(
        stride=step.stride,
        padding=step.padding,
        kernel=(kh, kw),
        c_in=step.in_channels,
        c_out=step.out_channels,
        tag=ctx.next_tag(),
        weight=weight,
        bias=bias,
        encoded=encoded,
        backend=params["backend"],
        dtype=ctx.dtype,
        use_gather=use_gather,
    )


def _lower_steps(steps: Sequence[object], ctx: CompileContext, graph: Graph) -> None:
    """Emit unfused graph nodes for expanded steps, tracking layout.

    The direct port of the old monolithic builder, minus the peepholes:
    BN folding and ReLU fusion are their own passes now, so every module
    becomes its own node and the fusion passes splice nodes out.
    """
    from .compile import (
        AvgPoolOp,
        BatchNormOp,
        FlattenOp,
        GlobalAvgPoolOp,
        LinearOp,
        MaxPoolOp,
        ModuleOp,
        ReluOp,
        ResidualOp,
        ToNCHW,
        ToNHWC,
        _cast,
    )

    def fmt() -> str:
        return graph.out_meta.layout

    def ensure(want: str) -> None:
        current = fmt()
        if current == want:
            return
        if current == "flat":
            raise TypeError(
                "cannot lower: a spatial op follows a flattened activation"
            )
        if want == "nhwc":
            graph.append(ToNHWC(tag=ctx.next_tag()))
        else:
            graph.append(ToNCHW(tag=ctx.next_tag()))

    for step in steps:
        if isinstance(step, _Residual):
            ensure("nhwc")
            branches = {}
            for key, branch_steps in (("body", step.body), ("shortcut", step.shortcut)):
                sub = Graph(TensorMeta("nhwc"), name=key)
                _lower_steps(branch_steps, ctx, sub)
                if sub.out_meta.layout == "nchw":
                    sub.append(ToNHWC(tag=ctx.next_tag()))
                branches[key] = sub
            node = graph.append(
                ResidualOp(
                    body_graph=branches["body"],
                    shortcut_graph=branches["shortcut"],
                    relu=step.relu,
                    tag=ctx.next_tag(),
                )
            )
            node.subgraphs.update(branches)
            continue
        if isinstance(step, nn.Conv2d):
            ensure("nhwc")
            graph.append(_lower_conv(step, ctx))
            continue
        if isinstance(step, nn.Linear):
            weight = step.weight.data
            if step._weight_mask is not None:
                weight = weight * step._weight_mask
            bias = step.bias.data if step.bias is not None else None
            graph.append(
                LinearOp(
                    weight=_cast(weight, ctx.dtype),
                    bias=_cast(bias, ctx.dtype),
                    tag=ctx.next_tag(),
                )
            )
            continue
        if isinstance(step, nn.BatchNorm2d):
            ensure("nhwc")
            scale, shift = step.fold_params()
            graph.append(
                BatchNormOp(
                    scale=scale, shift=shift, tag=ctx.next_tag(), dtype=ctx.dtype
                )
            )
            continue
        if isinstance(step, nn.ReLU):
            graph.append(ReluOp(tag=ctx.next_tag()))  # elementwise: any layout
        elif isinstance(step, nn.MaxPool2d):
            ensure("nhwc")
            graph.append(
                MaxPoolOp(
                    kernel=step.kernel_size,
                    stride=step.stride,
                    padding=step.padding,
                    tag=ctx.next_tag(),
                )
            )
        elif isinstance(step, nn.AvgPool2d):
            ensure("nhwc")
            graph.append(
                AvgPoolOp(kernel=step.kernel_size, stride=step.stride, tag=ctx.next_tag())
            )
        elif isinstance(step, nn.GlobalAvgPool2d):
            ensure("nhwc")
            graph.append(GlobalAvgPoolOp(tag=ctx.next_tag()))
        elif isinstance(step, nn.Flatten):
            ensure("nhwc")
            graph.append(FlattenOp(tag=ctx.next_tag()))
        elif isinstance(step, nn.Module):
            if fmt() == "nhwc":
                graph.append(ToNCHW(tag=ctx.next_tag()))
            graph.append(ModuleOp(module=step, tag=ctx.next_tag()))
        else:  # pragma: no cover - lowering hooks only yield modules
            raise TypeError(f"cannot lower step {step!r}")


@compiler_pass("lower", before=("fold_bn", "fuse_epilogues", "tune", "quantize"))
def pass_lower(graph: Graph, ctx: CompileContext) -> str:
    """Walk the module tree into unfused graph nodes (+ layout casts)."""
    _lower_steps(_expand(ctx.model), ctx, graph)
    total = sum(1 for _ in graph.walk())
    return f"{len(graph)} top-level nodes ({total} total)"


# ---------------------------------------------------------------------
# fold_bn
# ---------------------------------------------------------------------
@compiler_pass("fold_bn", after=("lower",), before=("fuse_epilogues", "quantize", "finalize"))
def pass_fold_bn(graph: Graph, ctx: CompileContext) -> str:
    """Fold every conv→BN pair into the conv's weight and bias.

    Works on SPM-encoded convs too — scaling a kernel's non-zero
    sequence never moves its pattern, so the encoding stays valid with
    scaled values. BN nodes with no conv producer stay standalone.
    """
    from .compile import BatchNormOp, ConvOp, _fold_encoded, fold_batchnorm_params

    folded = 0

    def fold_in(g: Graph) -> None:
        nonlocal folded
        for node in list(g.nodes):
            if not isinstance(node.op, BatchNormOp) or not node.inputs:
                continue
            producer = node.inputs[0].op
            if not isinstance(producer, ConvOp) or producer.backend is not None:
                continue
            bn = node.op
            if producer.encoded is not None:
                producer.encoded = _fold_encoded(producer.encoded, bn.scale, None)
                producer.bias = (
                    bn.shift
                    if producer.bias is None
                    else bn.shift + producer.bias * bn.scale
                )
            else:
                producer.weight, producer.bias = fold_batchnorm_params(
                    producer.weight, producer.bias, bn.scale, bn.shift
                )
            # The BN's fused ReLU (if the fuse pass already ran it would
            # be ordered wrong — constraints forbid that) rides on the
            # relu flag, which is still False here.
            producer.invalidate()
            g.remove(node)
            folded += 1

    fold_in(graph)
    for node in graph.walk():
        for sub in node.subgraphs.values():
            fold_in(sub)
    return f"folded {folded} batchnorm(s)"


# ---------------------------------------------------------------------
# fuse_epilogues
# ---------------------------------------------------------------------
@compiler_pass(
    "fuse_epilogues",
    after=("lower", "fold_bn"),
    before=("tune", "quantize", "link_halos", "finalize"),
)
def pass_fuse_epilogues(graph: Graph, ctx: CompileContext) -> str:
    """Absorb each standalone ReLU into its producer's fused epilogue.

    Convs and BNs apply the ReLU in place on their (cache-hot) output
    tile; linears clamp their small head output directly. ReLUs with no
    fusable producer stay standalone ops.
    """
    from .compile import BatchNormOp, ConvOp, LinearOp, ReluOp

    fused = 0

    def fuse_in(g: Graph) -> None:
        nonlocal fused
        for node in list(g.nodes):
            if not isinstance(node.op, ReluOp) or not node.inputs:
                continue
            producer = node.inputs[0].op
            if isinstance(producer, (ConvOp, LinearOp, BatchNormOp)) and not producer.relu:
                producer.relu = True
                if isinstance(producer, ConvOp):
                    producer.invalidate()  # the epilogue carries the ReLU
                g.remove(node)
                fused += 1

    fuse_in(graph)
    for node in graph.walk():
        for sub in node.subgraphs.values():
            fuse_in(sub)
    return f"fused {fused} relu(s)"


# ---------------------------------------------------------------------
# winograd
# ---------------------------------------------------------------------
@compiler_pass(
    "winograd",
    after=("lower", "fold_bn", "fuse_epilogues"),
    before=("tune", "quantize", "link_halos", "assign_arenas", "finalize"),
)
def pass_winograd(graph: Graph, ctx: CompileContext) -> str:
    """Mark eligible convs for the Winograd F(m x m, 3x3) fast path.

    Eligibility is static (3x3 kernel, stride 1, no gather schedule or
    backend override — see :func:`repro.runtime.winograd.eligible_tiles`);
    the *tile* needs each conv's output size. With ``ctx.input_shape``
    the pass propagates shapes analytically and picks a concrete tile
    per layer (``wino_m = 4``/``2``); without it, eligible convs get the
    ``wino_m = -1`` auto marker and the static tile rule resolves from
    the first execution plan instead. Runs before ``tune`` on purpose:
    the marks are the heuristic default the tuner arbitrates against
    (and can overturn per layer, cost- or measurement-ranked).
    """
    from .compile import ConvOp
    from .tune import _conv_shapes_analytic
    from .winograd import default_tile, eligible_tiles

    shapes = None
    if ctx.input_shape is not None:
        shapes = _conv_shapes_analytic(graph.op_list(), ctx.input_shape)

    counts: Dict[int, int] = {}
    for node in graph.walk():
        op = node.op
        if not isinstance(op, ConvOp):
            continue
        if (
            tuple(op.kernel) != (3, 3)
            or op.stride != 1
            or op.backend is not None
            or op.use_gather
            or op.c_in < 16
        ):
            continue
        in_hw = shapes.get(id(op)) if shapes is not None else None
        if in_hw is None:
            op.wino_m = -1  # auto: resolved from the first execution plan
            counts[-1] = counts.get(-1, 0) + 1
            continue
        out_hw = (in_hw[0] + 2 * op.padding - 2, in_hw[1] + 2 * op.padding - 2)
        tiles = eligible_tiles(
            kernel=op.kernel,
            stride=op.stride,
            out_hw=out_hw,
            c_in=op.c_in,
            backend=op.backend,
            use_gather=op.use_gather,
        )
        m = default_tile(out_hw=out_hw, c_in=op.c_in, tiles=tiles)
        if m:
            op.wino_m = m
            counts[m] = counts.get(m, 0) + 1
    if not counts:
        return "no eligible convs"
    parts = [
        f"{'auto' if m < 0 else f'F({m}x{m},3x3)'} on {counts[m]} conv(s)"
        for m in sorted(counts, reverse=True)
    ]
    return ", ".join(parts)


# ---------------------------------------------------------------------
# tune
# ---------------------------------------------------------------------
@compiler_pass(
    "tune",
    after=("fold_bn", "fuse_epilogues", "winograd"),
    before=("quantize", "link_halos", "assign_arenas", "finalize"),
)
def pass_tune(graph: Graph, ctx: CompileContext) -> str:
    """Pick per-conv schedules with the cost model or measurements.

    Runs before ``quantize`` on purpose: a conv's tuned
    ``use_gather``/``slab_bytes`` carry over onto its int8 form.
    """
    from .tune import tune_graph

    report = tune_graph(graph, ctx)
    ctx.tuning_report = report
    note = (
        f"tune={report.mode}: {report.tuned_layers} conv(s), "
        f"{report.changed_layers} changed, cache {report.cache_hits}h/"
        f"{report.cache_misses}m"
    )
    if report.micro_batch is not None:
        note += f", micro_batch={report.micro_batch}"
    return note


# ---------------------------------------------------------------------
# quantize
# ---------------------------------------------------------------------
@compiler_pass(
    "quantize",
    after=("fold_bn", "fuse_epilogues", "tune"),
    before=("link_halos", "assign_arenas", "finalize"),
)
def pass_quantize(graph: Graph, ctx: CompileContext) -> str:
    """Rewrite eligible convs into their int8 execution form.

    Delegates to :func:`repro.runtime.quant.quantize_pipeline` over the
    linearised top-level chain (calibration forward, per-edge scales,
    ``QuantConvOp`` conversion, quantize/dequantize boundaries), then
    rebuilds the graph from the rewritten op list.
    """
    from .quant import quantize_pipeline

    if ctx.calibration is None:
        raise ValueError(
            "compile_model(quantize=...) needs a calibration= batch "
            "to derive activation scales from"
        )
    new_ops, report = quantize_pipeline(
        graph.op_list(), ctx.dtype, ctx.calibration, ctx.quantize
    )
    graph.rebuild(new_ops)
    ctx.quant_report = report
    return (
        f"int{report.bits}: {report.quantized_layers} conv(s) quantized, "
        f"{report.fallback_layers} float, kernel={report.int8_kernel}"
    )


# ---------------------------------------------------------------------
# link_halos
# ---------------------------------------------------------------------
@compiler_pass(
    "link_halos",
    after=("fuse_epilogues", "tune", "quantize"),
    before=("finalize",),
)
def pass_link_halos(graph: Graph, ctx: CompileContext) -> str:
    """Connect producers to their consumer's padded input buffer.

    When a padded conv directly consumes a conv or pool, the producer
    writes its activation straight into the interior of the consumer's
    zero-bordered pad buffer — the consumer's ``_padded_input`` then
    recognises its own buffer (``x.base is buffer``) and skips the pad
    copy entirely. Best-effort: producer paths that cannot honour it
    (slab tiling, gather, forced backends) return their own buffer and
    the consumer copies as usual.
    """
    from .compile import AvgPoolOp, ConvOp, MaxPoolOp

    linked = 0

    def link_in(ops: List[object]) -> None:
        nonlocal linked
        for a, b in zip(ops, ops[1:]):
            if (
                isinstance(b, ConvOp)
                and b.padding > 0
                and isinstance(a, (ConvOp, MaxPoolOp, AvgPoolOp))
            ):
                a.halo = (b.tag, b.padding)
                linked += 1

    link_in(graph.op_list())
    for node in graph.walk():
        for sub in node.subgraphs.values():
            link_in(sub.op_list())
    return f"linked {linked} producer→consumer halo(s)"


# ---------------------------------------------------------------------
# assign_arenas
# ---------------------------------------------------------------------
@compiler_pass(
    "assign_arenas", after=("quantize", "link_halos"), before=("finalize",)
)
def pass_assign_arenas(graph: Graph, ctx: CompileContext) -> str:
    """Record the workspace-tag manifest the arenas will key buffers on.

    Every op draws scratch buffers from the per-thread arena under its
    own tag; this pass assigns tags to any op still missing one and
    records the manifest (``ctx.arena_manifest``) — tag uniqueness
    itself is a graph invariant ``verify()`` enforces after every pass.
    """
    manifest: List[str] = []
    for node in graph.walk():
        op = node.op
        if getattr(op, "tag", "") == "" and hasattr(op, "tag"):
            op.tag = ctx.next_tag()
        if node.tag:
            manifest.append(node.tag)
    ctx.arena_manifest = manifest
    return f"{len(manifest)} workspace tag(s)"


# ---------------------------------------------------------------------
# finalize
# ---------------------------------------------------------------------
@compiler_pass("finalize", after=("lower",))
def pass_finalize(graph: Graph, ctx: CompileContext) -> str:
    """Seal the pipeline: exit layout, GEMM operands, final verify.

    Appends the NCHW exit conversion when the pipeline ends spatial
    (features-only models hand back the eager layout), eagerly builds
    every op's derived execution state (``ConvOp.prepare`` — weight
    operands, epilogues) so serving never pays it on the first request,
    and runs a last :meth:`~repro.runtime.ir.Graph.verify`.
    """
    from .compile import ToNCHW

    if graph.out_meta.layout == "nhwc":
        graph.append(ToNCHW(tag="out"))
    prepared = 0
    for node in graph.walk():
        prepare = getattr(node.op, "prepare", None)
        if prepare is not None:
            prepare()
            prepared += 1
    graph.verify()
    return f"{len(graph)} top-level ops, {prepared} prepared"
