"""INT8 quantized execution: the paper's 8-bit storage format, run for real.

Sections IV-E of the paper (and :mod:`repro.core.quantize` /
:mod:`repro.arch.fixed_point` in this repo) describe weights stored at
8-bit precision with integer multiply-accumulate. Until this module,
every serving path dequantized those weights back to float before the
GEMM, so quantization only ever bought *storage*, never runtime. This
module closes that gap with two execution paths:

- :class:`QuantizedBackend` — an engine-level
  :class:`~repro.runtime.backends.ConvBackend` (name ``"quant"``,
  explicit-opt-in only) that quantizes weights per call, dynamically
  quantizes the activation batch, and runs the convolution as a GEMM on
  integer codes. The reference/demo path: it makes
  ``dispatch(..., backend="quant")`` and ``predict(model, x,
  backend="quant")`` work on any model with zero setup.
- :func:`quantize_pipeline` — the serving path.
  ``compile_model(model, quantize="int8", calibration=batch)`` lowers
  the model to float ops first, then this pass calibrates per-edge
  activation scales from a small batch, converts eligible convolutions
  to :class:`QuantConvOp` (int8 weight codes, SPM-aware so only the
  non-zero sequences are quantized, bias folded in code space) and
  keeps the whole conv trunk in int8 activation codes: each conv's
  epilogue *requantizes* its output directly to the next layer's codes,
  and max-pool/ReLU run on codes unchanged (both commute with a
  positive per-tensor scale). Layers whose weight-quantization error
  exceeds :attr:`QuantizationConfig.error_threshold` stay float, with
  :class:`QuantizeOp`/:class:`DequantizeOp` boundaries inserted
  automatically.

**Arithmetic model.** Activations flow between quantized convs as real
``int8`` arrays (the carried bytes are the codes, not float stand-ins),
and the dense GEMM runs through one of the kernels in the int8 kernel
registry — see :func:`get_int8_kernel`:

- ``"blocked"`` (always available): K-blocked float32 BLAS. Every
  int8 product satisfies ``|a*b| <= 127^2 < 2^14``, so a block of up to
  :data:`INT8_BLOCK_K` = 1024 products sums below ``2^24`` and float32
  represents each block-partial *exactly*; the partials accumulate in a
  float64 buffer (53-bit exact), making the whole GEMM bit-identical to
  the int32 datapath of :func:`repro.arch.fixed_point.int8_mac` while
  running at sgemm speed.
- ``"numba"`` (optional): a true int8 x int8 -> wide-accumulator loop
  nest JIT-compiled by numba when the import succeeds; absent numba the
  registry silently serves ``"blocked"`` instead.
- ``"reference"``: :func:`int8_gemm_int32`, numpy's integer-dtype
  matmul — exact but far too slow to serve with; the bit-identity
  oracle the other kernels are tested against.
- ``"float"``: the pre-registry behaviour — codes carried in float
  arrays through a plain BLAS GEMM (float64 exact for every realisable
  int8 conv, float32 to ~2^-24 relative).

``REPRO_INT8_KERNEL`` overrides the choice at compile time. This is the
honest numpy rendering of the hardware story: int8 storage, int8
operand traffic, integer products, wide accumulation, scales folded in
the epilogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from .arena import Arena
from .backends import Epilogue
from .compile import ConvOp, MaxPoolOp, ReluOp, _ExecState, _InferenceOp, _arr_nbytes
from .plan import ExecutionPlan, PlanCache

__all__ = [
    "QuantizationConfig",
    "QuantizationReport",
    "QuantizedBackend",
    "QuantConvOp",
    "QuantizeOp",
    "DequantizeOp",
    "quantize_weight_codes",
    "quantize_encoded_values",
    "int8_gemm_int32",
    "int8_gemm_int32_blocked",
    "INT8_BLOCK_K",
    "available_int8_kernels",
    "get_int8_kernel",
    "quantize_pipeline",
    "resolve_quantization",
]


@dataclass(frozen=True)
class QuantizationConfig:
    """Policy knobs for the int8 execution path.

    Parameters
    ----------
    bits:
        Weight/activation precision (symmetric signed); 8 is the
        hardware format, anything >= 2 works.
    granularity:
        ``"per_kernel"`` gives every output filter its own weight scale
        (one scale per GEMM output column — the finest granularity that
        still folds into a per-column epilogue multiply);
        ``"per_tensor"`` uses a single scale per layer.
    mode:
        ``"requantize"`` (default) keeps activations as int8 codes
        between quantized convs — each conv's epilogue rounds straight
        into the next layer's code space. ``"dequantize"`` returns every
        conv output to float and re-quantizes at the next conv's input;
        strictly more work, useful for isolating epilogue effects.
    error_threshold:
        Per-layer float fallback: a conv whose relative L2
        weight-quantization error exceeds this stays float (boundaries
        are inserted automatically).
    calibration_images:
        How many images of the calibration batch are actually used
        (scales saturate quickly; keeping this small keeps
        ``compile_model(quantize=...)`` cheap).
    kernel:
        Which int8 GEMM kernel dense quantized convs execute on:
        ``"auto"`` (default — the fastest registered kernel, numba when
        importable else the blocked-BLAS kernel), or an explicit
        ``"blocked"`` / ``"numba"`` / ``"reference"`` / ``"float"``.
        ``"float"`` restores the float-carried code GEMM (no int8
        activation traffic). The ``REPRO_INT8_KERNEL`` environment
        variable overrides this at compile time.
    """

    bits: int = 8
    granularity: str = "per_kernel"
    mode: str = "requantize"
    error_threshold: float = 0.1
    calibration_images: int = 8
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError("need at least 2 bits for signed quantization")
        if self.granularity not in ("per_kernel", "per_tensor"):
            raise ValueError(
                f"granularity must be 'per_kernel' or 'per_tensor', "
                f"got {self.granularity!r}"
            )
        if self.mode not in ("requantize", "dequantize"):
            raise ValueError(
                f"mode must be 'requantize' or 'dequantize', got {self.mode!r}"
            )
        if not 0 <= self.error_threshold:
            raise ValueError("error_threshold must be >= 0")
        if self.calibration_images < 1:
            raise ValueError("calibration_images must be >= 1")
        if self.kernel not in ("auto", "blocked", "numba", "reference", "float"):
            raise ValueError(
                f"kernel must be 'auto', 'blocked', 'numba', 'reference' "
                f"or 'float', got {self.kernel!r}"
            )

    @property
    def qmax(self) -> int:
        """Largest code magnitude: ``2^(bits-1) - 1`` (127 for int8)."""
        return 2 ** (self.bits - 1) - 1


def resolve_quantization(
    quantize: Union[None, bool, str, int, QuantizationConfig]
) -> Optional[QuantizationConfig]:
    """Normalise the public ``quantize=`` argument to a config.

    Accepts ``None``/``False`` (off), ``True`` or ``"int8"`` (defaults),
    an integer bit width, or a full :class:`QuantizationConfig`.
    """
    if quantize is None or quantize is False:
        return None
    if isinstance(quantize, QuantizationConfig):
        return quantize
    if quantize is True:
        return QuantizationConfig()
    if isinstance(quantize, int):
        return QuantizationConfig(bits=quantize)
    if isinstance(quantize, str):
        name = quantize.lower()
        if name.startswith("int") and name[3:].isdigit():
            return QuantizationConfig(bits=int(name[3:]))
        raise ValueError(f"unknown quantization spec {quantize!r} (try 'int8')")
    raise TypeError(f"cannot interpret quantize={quantize!r}")


# ---------------------------------------------------------------------
# Quantizers
# ---------------------------------------------------------------------
def _scales_from_peaks(peaks: np.ndarray, qmax: int) -> np.ndarray:
    """Symmetric scales from absolute peaks (zero peak -> scale 1.0)."""
    peaks = np.asarray(peaks, dtype=np.float64)
    return np.where(peaks > 0, peaks / qmax, 1.0)


def quantize_weight_codes(
    w_mat: np.ndarray, config: QuantizationConfig
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Quantize a ``(C_out, K)`` weight matrix to integer codes.

    Returns ``(codes, scales, error)`` with ``codes`` int-valued (stored
    as int8 when ``bits <= 8``), ``scales`` of shape ``(C_out,)`` (one
    per output kernel, or a broadcast single scale for per-tensor), and
    ``error`` the *worst per-output-kernel* relative L2 reconstruction
    error — the per-layer float fallback thresholds on this rather than
    the whole-layer norm, because a whole-layer figure lets one huge
    (exactly-represented) outlier mask every small weight that
    underflowed to code zero.
    """
    w_mat = np.asarray(w_mat, dtype=np.float64)
    qmax = config.qmax
    if config.granularity == "per_kernel":
        peaks = np.abs(w_mat).max(axis=1)
    else:
        peaks = np.full(w_mat.shape[0], np.abs(w_mat).max() if w_mat.size else 0.0)
    scales = _scales_from_peaks(peaks, qmax)
    codes = np.clip(np.round(w_mat / scales[:, None]), -qmax, qmax)
    if config.bits <= 8:
        codes = codes.astype(np.int8)
    else:
        codes = codes.astype(np.int32)
    recon = codes.astype(np.float64) * scales[:, None]
    row_norm = np.linalg.norm(w_mat, axis=1)
    row_err = np.linalg.norm(w_mat - recon, axis=1)
    rel = np.divide(row_err, row_norm, out=np.zeros_like(row_err), where=row_norm > 0)
    error = float(rel.max()) if rel.size else 0.0
    return codes, scales, error


def quantize_encoded_values(
    encoded, config: QuantizationConfig
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Quantize an SPM layer's non-zero sequences — never the dense tensor.

    ``encoded.values`` is ``(kernels, n)`` in ``(filter, channel)``
    row-major kernel order, so per-kernel granularity groups the
    ``C_in`` rows of each output filter (all scatter into the same GEMM
    column and therefore must share a scale). Returns
    ``(value_codes, scales, error)`` with ``value_codes`` shaped like
    ``encoded.values`` and ``scales`` of shape ``(C_out,)``.
    """
    c_out, c_in, _, _ = encoded.shape
    values = np.asarray(encoded.values, dtype=np.float64)
    per_filter = values.reshape(c_out, -1)
    codes_f, scales, error = quantize_weight_codes(per_filter, config)
    return codes_f.reshape(values.shape), scales, error


def quantize_activation_codes(
    x: np.ndarray, config: QuantizationConfig
) -> Tuple[np.ndarray, float]:
    """Dynamically quantize an activation array with one per-tensor scale."""
    peak = float(np.abs(x).max()) if x.size else 0.0
    scale = peak / config.qmax if peak > 0 else 1.0
    codes = np.clip(np.round(x / scale), -config.qmax, config.qmax)
    return codes, scale


def int8_gemm_int32(a_codes: np.ndarray, b_codes: np.ndarray) -> np.ndarray:
    """Exact integer-dtype reference GEMM: ``a_codes @ b_codes`` in int32.

    ``np.matmul`` on integer dtypes bypasses BLAS and loops in C — far
    too slow to serve with, which is exactly why the execution paths
    carry codes in float arrays instead. Tests use this to prove the
    float-carried accumulation is bit-identical to the int32 datapath.
    """
    return np.matmul(
        np.asarray(a_codes, dtype=np.int32), np.asarray(b_codes, dtype=np.int32)
    )


# ---------------------------------------------------------------------
# The int8 GEMM kernel registry
# ---------------------------------------------------------------------
#: Largest K block whose int8-product partial sums stay float32-exact:
#: |a*b| <= 127^2 = 16129 < 2^14, and 1024 * 16129 = 16_516_096 < 2^24,
#: so every block-partial is an exactly-represented float32 integer.
INT8_BLOCK_K = 1024

#: Column-buffer size above which the compiled int8 path switches from
#: one monolithic im2col + GEMM to image bands, fusing the requantize
#: epilogue into each band while its accumulator slice is cache-warm.
_INT8_BAND_BYTES = 16 << 20


def int8_gemm_int32_blocked(
    a_codes: np.ndarray,
    b_codes: Optional[np.ndarray],
    out: Optional[np.ndarray] = None,
    *,
    b_blocks: Optional[List[np.ndarray]] = None,
    partial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Bit-exact int8 GEMM through K-blocked float32 BLAS.

    ``a_codes (N, K) @ b_codes (K, M)`` with int8-valued operands (any
    dtype holding exact int8 values — the compiled pipeline hands in
    float32 columns cast straight off the int8 activation buffers).
    Each K block of at most :data:`INT8_BLOCK_K` columns is contracted
    by sgemm — exact because every int8 product satisfies
    ``|a*b| <= 127^2 < 2^14``, so a block-partial stays below ``2^24``
    and float32 represents it exactly — and the block partials
    accumulate in a float64 output (53-bit exact for every realisable
    int8 conv). A single-block problem with a float32 ``out`` skips the
    staging entirely: one sgemm straight into the output.

    The keyword buffers let the compiled pipeline pre-bind workspace:
    ``b_blocks`` (the per-block float32 weight operands, replacing
    ``b_codes``) and ``partial`` (``(N, M)`` float32). Omitted buffers
    are allocated per call; the default ``out`` is float64 holding the
    exact int32 accumulator values (float so the requantizing epilogue
    folds scales in place without another cast).
    """
    a_codes = np.asarray(a_codes)
    n, k = a_codes.shape
    m = b_codes.shape[1] if b_blocks is None else b_blocks[0].shape[1]
    if out is None:
        out = np.empty((n, m), dtype=np.float64)
    if k == 0:
        out[...] = 0.0
        return out
    single = k <= INT8_BLOCK_K
    for i, k0 in enumerate(range(0, k, INT8_BLOCK_K)):
        k1 = min(k0 + INT8_BLOCK_K, k)
        if b_blocks is not None:
            b_blk = b_blocks[i]
        else:
            b_blk = np.ascontiguousarray(b_codes[k0:k1], dtype=np.float32)
        a_blk = a_codes[:, k0:k1]
        if a_blk.dtype != np.float32:
            a_blk = a_blk.astype(np.float32)
        if single and out.dtype == np.float32:
            np.matmul(a_blk, b_blk, out=out)
            return out
        if partial is None:
            partial = np.empty((n, m), dtype=np.float32)
        np.matmul(a_blk, b_blk, out=partial)
        if k0 == 0:
            out[...] = partial
        else:
            out += partial
    return out


_NUMBA_KERNEL: Optional[object] = None
_NUMBA_TRIED = False


def _numba_int8_kernel():
    """JIT-compile (once) the true-integer kernel, or None without numba."""
    global _NUMBA_KERNEL, _NUMBA_TRIED
    if _NUMBA_TRIED:
        return _NUMBA_KERNEL
    _NUMBA_TRIED = True
    try:
        import numba
    except ImportError:
        return None

    @numba.njit(cache=True)
    def _kernel(a, b, out):  # pragma: no cover - compiled
        n, k = a.shape
        m = b.shape[1]
        for i in range(n):
            for j in range(m):
                out[i, j] = 0.0
            for p in range(k):
                av = np.int32(a[i, p])
                if av != 0:
                    for j in range(m):
                        out[i, j] += av * np.int32(b[p, j])
        return out

    _NUMBA_KERNEL = _kernel
    return _NUMBA_KERNEL


def int8_gemm_int32_numba(
    a_codes: np.ndarray, b_codes: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """True int8 x int8 -> wide-accumulator GEMM (requires numba)."""
    kernel = _numba_int8_kernel()
    if kernel is None:  # registry guards against this; belt and braces
        return int8_gemm_int32_blocked(a_codes, b_codes, out)
    a_codes = np.ascontiguousarray(a_codes, dtype=np.int8)
    b_codes = np.ascontiguousarray(b_codes, dtype=np.int8)
    if out is None:
        out = np.empty((a_codes.shape[0], b_codes.shape[1]), dtype=np.float64)
    return kernel(a_codes, b_codes, out)


def available_int8_kernels() -> Tuple[str, ...]:
    """Registered kernel names, fastest-preferred order."""
    names: List[str] = []
    if _numba_int8_kernel() is not None:
        names.append("numba")
    names.extend(["blocked", "reference"])
    return tuple(names)


def get_int8_kernel(name: Optional[str] = None) -> str:
    """Resolve an int8 kernel request to a concrete registered name.

    ``None``/``"auto"`` picks the fastest available kernel (numba when
    importable, else blocked). A ``"numba"`` request without numba
    degrades gracefully to ``"blocked"`` — quantized serving must never
    fail because an optional dependency is missing. The
    ``REPRO_INT8_KERNEL`` environment variable, when set, wins over
    ``name`` (the runtime escape hatch); unknown explicit names raise.
    """
    import os

    env = os.environ.get("REPRO_INT8_KERNEL", "").strip().lower()
    if env:
        name = env
    if name in (None, "", "auto"):
        return available_int8_kernels()[0]
    if name == "numba" and _numba_int8_kernel() is None:
        return "blocked"
    if name not in ("blocked", "numba", "reference", "float"):
        raise ValueError(
            f"unknown int8 kernel {name!r} "
            f"(try 'auto', 'blocked', 'numba', 'reference' or 'float')"
        )
    return name


# ---------------------------------------------------------------------
# Eager engine backend
# ---------------------------------------------------------------------
class QuantizedBackend:
    """Engine backend running convs as GEMMs on int8 codes (``"quant"``).

    The zero-setup int8 path: weights (dense or SPM-decoded) are
    quantized on every call with the configured granularity, the
    activation batch is quantized dynamically with one per-tensor scale,
    and the GEMM multiplies the two integer-code matrices with the scale
    product folded back per output column afterwards — the epilogue
    (bias/ReLU) then applies in float exactly like every other backend,
    so outputs are drop-in comparable. Never auto-selected
    (:func:`~repro.runtime.engine.select_backend` ignores it): per-call
    weight quantization is reference-grade, not serving-grade — serving
    uses ``compile_model(quantize=...)``, which quantizes once at
    compile time.
    """

    name = "quant"

    def __init__(self, config: Optional[QuantizationConfig] = None) -> None:
        self.config = config or QuantizationConfig()

    def supports(self, request) -> bool:
        """Any dense-weight or SPM-encoded request can run quantized."""
        return request.weight is not None or request.encoded is not None

    def execute(
        self,
        request,
        plan: ExecutionPlan,
        workspace: Optional[dict] = None,
        epilogue: Optional[Epilogue] = None,
    ) -> np.ndarray:
        """Quantize operands, run the code GEMM, fold scales, epilogue."""
        from ..nn.functional import im2col

        config = self.config
        if request.weight is not None:
            weight = request.weight
        else:
            weight = request.encoded.decoded_weight()
        w_mat = weight.reshape(plan.out_channels, -1)
        w_codes, w_scales, _ = quantize_weight_codes(w_mat, config)
        x_codes, a_scale = quantize_activation_codes(request.x, config)
        cols, _ = im2col(x_codes, plan.kernel, plan.stride, plan.padding)
        # Integer codes carried in float64: BLAS dgemm accumulates every
        # realisable int8 conv exactly (products < 2^15, sums < 2^53).
        out = cols @ w_codes.T.astype(np.float64)
        out *= w_scales[None, :] * a_scale
        if epilogue is not None:
            epilogue.apply(out)
        return out


# ---------------------------------------------------------------------
# Compiled-pipeline ops
# ---------------------------------------------------------------------
@dataclass
class QuantizeOp(_InferenceOp):
    """Float activations -> int8 codes at a quantized-region entry.

    With ``int8=True`` (every kernel except ``"float"``) the emitted
    array is a real ``int8`` buffer — downstream convs then move
    one-byte activation codes through their pad/column buffers instead
    of four-byte float stand-ins.
    """

    scale: float
    qmax: int
    tag: str
    int8: bool = False

    domain_out = "codes"

    def run(self, x, state, backend):
        """Scale, round and clip the activation into code space."""
        out = state.arena.take(f"{self.tag}:out", x.shape, x.dtype)
        np.multiply(x, 1.0 / self.scale, out=out)
        np.clip(out, -self.qmax, self.qmax, out=out)
        if not self.int8:
            np.rint(out, out=out)
            return out
        codes = state.arena.take(f"{self.tag}:q8", x.shape, np.int8)
        # Fused final pass: round in float, cast on store (clip keeps
        # the values in int8 range, so the unsafe cast is exact).
        np.rint(out, out=codes, casting="unsafe")
        return codes

    def describe(self) -> str:
        """Human-readable op label for ``CompiledModel.describe``."""
        dest = "->int8" if self.int8 else ""
        return f"quantize(x{1.0 / self.scale:.3g}){dest}"


@dataclass
class DequantizeOp(_InferenceOp):
    """Int8 codes -> float activations at a quantized-region exit."""

    scale: float
    tag: str
    dtype: Optional[object] = None  # float carry dtype; None -> infer

    domain_out = "float"

    def run(self, x, state, backend):
        """Multiply codes by their scale, back into float activations."""
        if self.dtype is not None:
            out_dtype = np.dtype(self.dtype)
        elif x.dtype.kind == "f":
            out_dtype = x.dtype
        else:  # int8-carried codes with no recorded carry dtype
            out_dtype = np.dtype(np.float32)
        out = state.arena.take(f"{self.tag}:out", x.shape, out_dtype)
        np.multiply(x, self.scale, out=out)
        return out

    def describe(self) -> str:
        """Human-readable op label for ``CompiledModel.describe``."""
        return f"dequantize(x{self.scale:.3g})"


@dataclass
class QuantConvOp(ConvOp):
    """Channels-last convolution executed on int8 codes.

    Subclasses :class:`~repro.runtime.compile.ConvOp` for its geometry
    plumbing (plan lookup, slab sizing, padded-input reuse, halo
    linking) and replaces the arithmetic: ``weight_t`` holds integer
    weight codes (float-carried, bias folded in as an appended code-space
    row against the column buffer's ones column), inputs are activation
    codes at ``in_scale``, and the epilogue folds
    ``w_scale * in_scale`` back per output column. With ``out_scale``
    set the epilogue *requantizes* — rounds straight into the consumer's
    code space, the clip's lower bound doubling as the fused ReLU — so
    a chain of quantized convs never touches float activations; with
    ``out_scale=None`` it dequantizes to float (region exit).

    The int8 artifact (``codes_int8``, per-filter ``w_scale``, and for
    SPM layers only the non-zero sequence codes) is what the op *owns*;
    the float-carried GEMM operand is derived working state.
    """

    w_scale: Optional[np.ndarray] = None  # (1, C_out) float
    in_scale: float = 1.0
    out_scale: Optional[float] = None  # None -> dequantize epilogue
    qmax: int = 127
    codes_int8: Optional[np.ndarray] = None  # storage-format weight codes
    bias_q: Optional[np.ndarray] = None  # (1, C_out) bias in code space
    int8_kernel: Optional[str] = None  # dense GEMM kernel; None -> float-carried
    emit_int8: bool = False  # requantize straight into real int8 buffers
    _mult_cache: Optional[np.ndarray] = field(default=None, repr=False)
    _w_q8: Optional[np.ndarray] = field(default=None, repr=False)
    _w_blocks: Optional[List[np.ndarray]] = field(default=None, repr=False)
    _w_spans: Optional[List[Tuple[int, int]]] = field(default=None, repr=False)
    _bias_folded: Optional[bool] = field(default=None, repr=False)

    @property
    def domain_out(self) -> str:
        """Edge domain this conv produces: codes while requantizing."""
        return "codes" if self.out_scale is not None else "float"

    def param_nbytes(self) -> int:
        """The int8 artifact *plus* the float-carried GEMM operand.

        ``weight_t`` is built by quantization, not by :meth:`prepare` —
        it cannot be rebuilt from ``self.weight`` (None here) — so it
        counts as an owned parameter, never as reclaimable derived
        state."""
        total = _arr_nbytes(
            self.weight, self.bias, self.weight_t,
            self.codes_int8, self.w_scale, self.bias_q,
        )
        if self.encoded is not None:
            total += self.encoded.nbytes
        return total

    def derived_nbytes(self) -> int:
        total = _arr_nbytes(self._mult_cache, self._w_q8)
        if self._w_blocks is not None:
            total += sum(blk.nbytes for blk in self._w_blocks)
        if self.encoded is not None:
            total += self.encoded.cached_nbytes
        return total

    def release_derived(self) -> int:
        """Drop only the rebuildable state (multiplier cache, the int8
        kernel's prepared GEMM operands, and the encoded layer's
        memoized gather/grouped matrices); the int8 artifact stays —
        see :meth:`param_nbytes`."""
        freed = self.derived_nbytes()
        self._mult_cache = None
        self._w_q8 = None
        self._w_blocks = None
        self._w_spans = None
        self._bias_folded = None
        if self.encoded is not None:
            self.encoded.invalidate_caches()
        return freed

    def _multiplier(self, dtype) -> np.ndarray:
        """Per-column scale folding the int32-style accumulator back."""
        if self._mult_cache is None or self._mult_cache.dtype != dtype:
            mult = self.w_scale * self.in_scale
            if self.out_scale is not None:
                mult = mult / self.out_scale
            self._mult_cache = mult.astype(dtype)
        return self._mult_cache

    def _fold_and_clip(self, mat: np.ndarray) -> None:
        """Fold scales in place; clip into code space when requantizing.

        Clip-then-round equals round-then-clip here because the clip
        bounds are integers, so callers can run the final rounding pass
        separately — straight into a hand-off destination if they have
        one. The clip's lower bound doubles as the fused ReLU.
        """
        mat *= self._multiplier(mat.dtype)
        if self.out_scale is not None:
            np.clip(mat, 0.0 if self.relu else -self.qmax, self.qmax, out=mat)

    def _requant(self, mat: np.ndarray) -> np.ndarray:
        """Slab-path epilogue: fold scales, then round (or ReLU) in place."""
        self._fold_and_clip(mat)
        if self.out_scale is not None:
            np.rint(mat, out=mat)
        elif self.relu:
            np.maximum(mat, 0.0, out=mat)
        return mat

    def _emits_int8(self) -> bool:
        """Whether this conv's requantizing epilogue writes real int8."""
        return self.emit_int8 and self.out_scale is not None

    def _finish(self, out4: np.ndarray, arena: Arena) -> np.ndarray:
        """Monolithic-path epilogue: requantize + consumer hand-off.

        Same arithmetic as :meth:`_requant`, but with a halo consumer
        the final pass (rounding, or the dequant ReLU) writes directly
        into the consumer's padded-buffer interior, so the hand-off
        costs no extra copy. When the pipeline carries int8 codes the
        destination (halo interior or this op's own code buffer) is a
        real int8 array; the rounded accumulator casts into it exactly,
        because requantized values are integers within [-qmax, qmax].
        """
        int8_out = self._emits_int8()
        carry = (
            self.weight_t.dtype
            if self.weight_t is not None
            else self.encoded.values.dtype
        )
        dest_dtype = np.dtype(np.int8) if int8_out else np.dtype(carry)
        interior = None
        if self.halo is not None:
            consumer_tag, p = self.halo
            n, oh, ow, c = out4.shape
            buffer = arena.take_filled(
                f"{consumer_tag}:pad", (n, oh + 2 * p, ow + 2 * p, c), dest_dtype, 0.0
            )
            interior = buffer[:, p : p + oh, p : p + ow, :]
        self._fold_and_clip(out4)
        if self.out_scale is not None:
            if not int8_out:
                dest = interior if interior is not None else out4
                np.rint(out4, out=dest)
                return dest
            if interior is None:
                interior = arena.take(f"{self.tag}:q8", out4.shape, np.int8)
            # One fused pass: the ufunc rounds in float and casts each
            # element into the int8 destination on store (the clip above
            # guarantees the values are in range, so the unsafe cast is
            # exact).
            np.rint(out4, out=interior, casting="unsafe")
            return interior
        if interior is not None:
            if self.relu:
                np.maximum(out4, 0.0, out=interior)
            else:
                np.copyto(interior, out4)
            return interior
        if out4.dtype != dest_dtype:  # int8 kernel's f64 accumulator at a
            # region exit: hand back activations in the pipeline's carry
            # dtype rather than leaking float64 into the float tail.
            outf = arena.take(f"{self.tag}:outf", out4.shape, dest_dtype)
            if self.relu:
                np.maximum(out4, 0.0, out=outf)
            else:
                np.copyto(outf, out4)
            return outf
        if self.relu:
            np.maximum(out4, 0.0, out=out4)
        return out4

    def run(self, x, state, backend):
        """Execute on activation codes (no engine backend overrides —
        the quantized lowering is the backend)."""
        if backend or self.backend:
            raise ValueError(
                "quantized compiled pipelines do not support conv backend "
                "overrides; compile without quantize= to force a backend"
            )
        if self.use_gather:
            return self._run_gather_q(x, state)
        if self.int8_kernel:
            thunk = self._int8_thunk(x, state)
            if thunk is not None:
                return thunk(x)
        return self._run_dense_q(x, state)

    def make_thunk(self, x, state):
        """Trace-executor closure; the int8 kernel path binds its own."""
        if self.use_gather:
            return None  # generic dispatch wraps _run_gather_q
        if self.int8_kernel:
            return self._int8_thunk(x, state)
        return super().make_thunk(x, state)

    # -- true-integer dense path --------------------------------------
    def _int8_operands(self) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Derived GEMM operands for the int8 kernels (rebuildable from
        the owned artifact, so they count as derived state).

        Builds the ``(K, C_out)`` int8 weight matrix, then sizes the
        K spans by the *value-aware* exactness certificate: activations
        are clipped to ``[-qmax, qmax]``, so every partial sum inside a
        span is bounded by ``qmax * max_j sum_i |w_ij|`` over the span's
        actual weight codes — the span may grow until that bound (plus
        the folded bias code, which joins the same accumulation) reaches
        float32's exact-integer range. In practice this collapses most
        layers to a single span, which accumulates in float32 with no
        staging at all; the worst-case ``INT8_BLOCK_K`` bound is only
        the certificate's floor. With the blocked kernel the integer
        bias codes fold into the last span's operand as an extra row
        against the column buffer's ones column, so bias costs no
        separate pass over the accumulator.
        """
        if self._w_q8 is None:
            k = self.kernel[0] * self.kernel[1] * self.c_in
            if self.weight_t is not None:
                w = self.weight_t[: self.weight_t.shape[0] - self.bias_rows]
            else:  # decoded SPM codes never materialised a float operand
                w = self._decoded_weight_t()[:k]
            self._w_q8 = np.ascontiguousarray(np.rint(w), dtype=np.int8)
        if self._w_blocks is None:
            w = self._w_q8
            k = w.shape[0]
            limit = float(2**24 - 1)
            qmax = float(self.qmax)
            head = 0.0
            folding = self.int8_kernel == "blocked" and self.bias_q is not None
            if folding:
                head = float(np.max(np.abs(self.bias_q)))
                if qmax * 127.0 + head > limit:  # bias codes too large to
                    folding = False  # join the exact accumulation
                    head = 0.0
            # cum[i] = per-channel L1 of the first i weight rows.
            cum = np.zeros((k + 1, w.shape[1]), dtype=np.int64)
            np.cumsum(np.abs(w.astype(np.int64)), axis=0, out=cum[1:])
            spans: List[Tuple[int, int]] = []
            start = 0
            while start < k:
                lo, hi, best = start + 1, k, start + 1
                while lo <= hi:
                    mid = (lo + hi) // 2
                    bound = qmax * float((cum[mid] - cum[start]).max()) + head
                    if bound <= limit:
                        best, lo = mid, mid + 1
                    else:
                        hi = mid - 1
                spans.append((start, best))
                start = best
            blocks = []
            for i, (k0, k1) in enumerate(spans):
                blk = np.ascontiguousarray(w[k0:k1], dtype=np.float32)
                if folding and i == len(spans) - 1:
                    blk = np.ascontiguousarray(
                        np.vstack([blk, self.bias_q.astype(np.float32)])
                    )
                blocks.append(blk)
            self._w_blocks = blocks
            self._w_spans = spans
            self._bias_folded = folding
        return self._w_q8, self._w_blocks

    def _int8_thunk(self, x, state):
        """Prebound int8-kernel executor for ``x``'s geometry.

        The activation hand-off stays int8 (one-byte pad buffers, pool
        and ReLU traffic); the registry kernel's GEMM accumulates exact
        int32 values in float, code-space bias adds post-accumulation,
        then :meth:`_finish` requantizes into the consumer's int8
        buffer. The blocked kernel reads float32 columns cast straight
        off the int8 buffers by the im2col strided copy — no separate
        staging pass — and a single-K-block problem (``K <= 1024``, the
        large-spatial layers) accumulates in float32, exact by the same
        ``2^24`` bound. One closure serves both :meth:`run` (built and
        invoked per call) and the trace executor (recorded once,
        replayed). When the float32 columns outgrow the slab budget the
        blocked kernel row-bands the im2col + GEMM over the same int8
        pad buffer instead of abandoning the integer path; only the
        numba/reference kernels (whose columns must stay int8) fall
        back to generic dispatch on slab-looped geometries.
        """
        from ..nn.functional import im2col_nhwc

        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        oh, ow = plan.out_hw
        k = kh * kw * self.c_in
        kernel_name = self.int8_kernel
        blocked = kernel_name == "blocked"
        cols_dtype = np.dtype(np.float32) if blocked else np.dtype(np.int8)
        rows = self._slab_rows(plan, n * ow * k, cols_dtype.itemsize)
        if rows < oh and not blocked:
            return None
        w_q8, w_blocks = self._int8_operands()
        spans = self._w_spans
        folded = blocked and bool(self._bias_folded)
        extra = 1 if folded else 0  # the ones column driving the bias row
        single = blocked and len(spans) == 1
        acc_dtype = np.float32 if single else np.float64
        acc = arena.take(f"{self.tag}:acc", (n * oh * ow, self.c_out), acc_dtype)
        acc4 = acc.reshape(n, oh, ow, self.c_out)
        kernel, stride = self.kernel, self.stride
        c_out = self.c_out
        last = len(spans) - 1

        def span_gemm(a_cols, out_mat, partial_mat):
            for i, (k0, k1) in enumerate(spans):
                a_blk = a_cols[:, k0 : k1 + extra] if i == last else a_cols[:, k0:k1]
                np.matmul(a_blk, w_blocks[i], out=partial_mat)
                if i == 0:
                    out_mat[...] = partial_mat
                else:
                    out_mat += partial_mat

        cols_bytes = n * oh * ow * (k + extra) * cols_dtype.itemsize
        fused = None
        if blocked and n > 1 and cols_bytes > _INT8_BAND_BYTES:
            # Image-banded blocked path: im2col + GEMM run per batch
            # sub-range sized to keep the band's working set cache-warm
            # (and inside the slab budget). An image band's accumulator
            # rows are contiguous, so each band GEMM writes straight
            # into the accumulator — no tile copy. When this conv
            # requantizes, the epilogue (scale fold, clip, fused
            # round-and-cast into the consumer's int8 buffer) runs per
            # band too, while the band's accumulator is still hot.
            from .compile import SLAB_BYTES

            budget_bytes = SLAB_BYTES if self.slab_bytes is None else self.slab_bytes
            budget = min(budget_bytes, _INT8_BAND_BYTES) // 4
            imgs = max(1, budget // (oh * ow * (k + extra)))
            imgs = -(-n // (-(-n // imgs)))  # balance the band sizes
            band_cols = arena.take_filled(
                f"{self.tag}:cols", (imgs * oh * ow, k + extra), np.float32, 1.0
            )
            partial = (
                None
                if single
                else arena.take(f"{self.tag}:pp", (imgs * oh * ow, c_out), np.float32)
            )
            finish_band = None
            if self._emits_int8() and (self.bias_q is None or folded):
                if self.halo is not None:
                    consumer_tag, hp = self.halo
                    halo_buf = arena.take_filled(
                        f"{consumer_tag}:pad",
                        (n, oh + 2 * hp, ow + 2 * hp, c_out),
                        np.int8,
                        0.0,
                    )
                    dest4 = halo_buf[:, hp : hp + oh, hp : hp + ow, :]
                else:
                    dest4 = arena.take(f"{self.tag}:q8", (n, oh, ow, c_out), np.int8)
                mult = self._multiplier(acc.dtype)
                lo = 0.0 if self.relu else float(-self.qmax)
                hi = float(self.qmax)

                def finish_band(i0, i1):
                    band = acc4[i0:i1]
                    np.multiply(band, mult, out=band)
                    np.clip(band, lo, hi, out=band)
                    np.rint(band, out=dest4[i0:i1], casting="unsafe")

                fused = dest4

            def compute(src):
                for i0 in range(0, n, imgs):
                    i1 = min(i0 + imgs, n)
                    bc = band_cols[: (i1 - i0) * oh * ow]
                    im2col_nhwc(src[i0:i1], kernel, stride, out=bc[:, :k])
                    band_acc = acc[i0 * oh * ow : i1 * oh * ow]
                    if single:
                        np.matmul(bc, w_blocks[0], out=band_acc)
                    else:
                        span_gemm(bc, band_acc, partial[: len(bc)])
                    if finish_band is not None:
                        finish_band(i0, i1)

        elif rows < oh:
            # Single-image fallback: row bands through a band tile.
            band_cols = arena.take_filled(
                f"{self.tag}:cols", (n * rows * ow, k + extra), np.float32, 1.0
            )
            tile = arena.take(f"{self.tag}:tile", (n * rows * ow, c_out), acc_dtype)
            partial = (
                None
                if single
                else arena.take(f"{self.tag}:pp", (n * rows * ow, c_out), np.float32)
            )

            def compute(src):
                for r0 in range(0, oh, rows):
                    r1 = min(r0 + rows, oh)
                    src_band = src[:, r0 * stride : (r1 - 1) * stride + kh, :, :]
                    bc = band_cols[: n * (r1 - r0) * ow]
                    im2col_nhwc(src_band, kernel, stride, out=bc[:, :k])
                    bt = tile[: len(bc)]
                    if single:
                        np.matmul(bc, w_blocks[0], out=bt)
                    else:
                        span_gemm(bc, bt, partial[: len(bc)])
                    acc4[:, r0:r1] = bt.reshape(n, r1 - r0, ow, c_out)

        else:
            cols = arena.take_filled(
                f"{self.tag}:cols", (n * oh * ow, k + extra), cols_dtype, 1.0
            )
            cols_k = cols[:, :k]
            if blocked:
                if single:

                    def gemm():
                        np.matmul(cols, w_blocks[0], out=acc)

                else:
                    partial = arena.take(
                        f"{self.tag}:pp", (n * oh * ow, c_out), np.float32
                    )

                    def gemm():
                        span_gemm(cols, acc, partial)

            elif kernel_name == "numba":

                def gemm():
                    int8_gemm_int32_numba(cols, w_q8, acc)

            else:  # "reference": exact integer dtypes, reference-grade speed

                def gemm():
                    acc[...] = int8_gemm_int32(cols, w_q8)

            def compute(src):
                im2col_nhwc(src, kernel, stride, out=cols_k)
                gemm()

        bias = None if folded else self.bias_q
        p = self.padding
        if p > 0:
            h, w = x.shape[1], x.shape[2]
            pad = arena.take_filled(
                f"{self.tag}:pad", (n, h + 2 * p, w + 2 * p, self.c_in), np.int8, 0.0
            )
            interior = pad[:, p : p + h, p : p + w, :]

            if fused is not None:

                def thunk(x_in):
                    if x_in.base is not pad:
                        interior[...] = x_in
                    compute(pad)
                    return fused

            else:

                def thunk(x_in):
                    if x_in.base is not pad:
                        interior[...] = x_in
                    compute(pad)
                    if bias is not None:
                        np.add(acc, bias, out=acc)
                    return self._finish(acc4, arena)

        elif fused is not None:

            def thunk(x_in):
                compute(x_in)
                return fused

        else:

            def thunk(x_in):
                compute(x_in)
                if bias is not None:
                    np.add(acc, bias, out=acc)
                return self._finish(acc4, arena)

        return thunk

    def _run_dense_q(self, x, state):
        from ..nn.functional import im2col_nhwc

        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        oh, ow = plan.out_hw
        k = kh * kw * self.c_in
        gemm_dtype = np.result_type(x.dtype, self.weight_t.dtype)
        xp = self._padded_input(x, arena)
        out = arena.take(f"{self.tag}:out", (n, oh, ow, self.c_out), gemm_dtype)
        rows = self._slab_rows(plan, n * ow * (k + self.bias_rows), x.dtype.itemsize)
        if rows >= oh:
            cols = arena.take_filled(
                f"{self.tag}:cols", (n * oh * ow, k + self.bias_rows), x.dtype, 1.0
            )
            im2col_nhwc(xp, self.kernel, self.stride, out=cols[:, :k])
            out_mat = out.reshape(n * oh * ow, self.c_out)
            np.matmul(cols, self.weight_t, out=out_mat)
            if self.bias_q is not None and not self.bias_rows:
                np.add(out_mat, self.bias_q, out=out_mat)
            return self._finish(out, arena)
        q_out = None
        if self._emits_int8():  # slab epilogue hands off integer codes
            q_out = arena.take(f"{self.tag}:q8", out.shape, np.int8)
        for r0 in range(0, oh, rows):
            r1 = min(r0 + rows, oh)
            x_slab = xp[:, r0 * self.stride : (r1 - 1) * self.stride + kh, :, :]
            cols = arena.take_filled(
                f"{self.tag}:cols",
                (n * (r1 - r0) * ow, k + self.bias_rows),
                x.dtype,
                1.0,
            )
            im2col_nhwc(x_slab, self.kernel, self.stride, out=cols[:, :k])
            tile = arena.take(f"{self.tag}:tile", (len(cols), self.c_out), gemm_dtype)
            np.matmul(cols, self.weight_t, out=tile)
            if self.bias_q is not None and not self.bias_rows:
                np.add(tile, self.bias_q, out=tile)
            self._requant(tile)
            dest = out if q_out is None else q_out
            dest[:, r0:r1] = tile.reshape(n, r1 - r0, ow, self.c_out)
        return out if q_out is None else q_out

    def _run_gather_q(self, x, state):
        from ..nn.functional import im2col_nhwc

        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        k2 = kh * kw
        oh, ow = plan.out_hw
        # self.encoded carries the CODE values, so the memoized gather
        # plan / grouped matrix machinery serves the int8 path untouched.
        gather = self.encoded.gather_plan()
        grouped = self.encoded.grouped_weight_matrix()
        gemm_dtype = np.result_type(x.dtype, grouped.dtype)
        if gemm_dtype.kind != "f":  # int8-carried codes meet float grouped ops
            gemm_dtype = np.dtype(grouped.dtype)
        xp = self._padded_input(x, arena)
        out_dtype = np.dtype(np.int8) if self._emits_int8() else gemm_dtype
        out = arena.take(f"{self.tag}:out", (n, oh, ow, self.c_out), out_dtype)
        per_row = n * ow * max(k2 * self.c_in, grouped.shape[0])
        rows = self._slab_rows(plan, per_row, x.dtype.itemsize)
        for r0 in range(0, oh, rows):
            r1 = min(r0 + rows, oh)
            x_slab = xp[:, r0 * self.stride : (r1 - 1) * self.stride + kh, :, :]
            cols, _ = im2col_nhwc(
                x_slab,
                self.kernel,
                self.stride,
                out=arena.take(
                    f"{self.tag}:cols", (n * (r1 - r0) * ow, k2 * self.c_in), x.dtype
                ),
            )
            cols_r = cols.reshape(-1, k2, self.c_in)
            gathered = cols_r[:, gather.positions_by_code, :]
            a_mat = gathered.transpose(0, 1, 3, 2).reshape(len(cols_r), -1)
            if a_mat.dtype != gemm_dtype:
                a_mat = a_mat.astype(gemm_dtype)
            tile = a_mat @ grouped
            if self.bias_q is not None:
                tile += self.bias_q.astype(tile.dtype, copy=False)
            self._requant(tile)
            out[:, r0:r1] = tile.reshape(n, r1 - r0, ow, self.c_out)
        return out

    def describe(self) -> str:
        """Human-readable op label, e.g. ``qconv[blocked]+bias+relu->int8``."""
        kind = "spm-qconv" if self.encoded is not None else "qconv"
        if self.int8_kernel:
            kind += f"[{self.int8_kernel}]"
        dest = "float" if self.out_scale is None else f"int{_bits_of(self.qmax)}"
        fused = []
        if self.bias_rows or self.bias_q is not None:
            fused.append("bias")
        if self.relu:
            fused.append("relu")
        return f"{kind}" + (f"+{'+'.join(fused)}" if fused else "") + f"->{dest}"

    def schedule_kind(self) -> str:
        """Per-layer schedule annotation, suffixed with the GEMM datapath:
        ``+int8:<kernel>`` for the true-integer kernels, ``+int8:float``
        for float-carried codes."""
        base = super().schedule_kind()
        return f"{base}+int8:{self.int8_kernel or 'float'}"


def _bits_of(qmax: int) -> int:
    """Bit width whose symmetric signed range ends at ``qmax``."""
    return int(qmax + 1).bit_length()


# ---------------------------------------------------------------------
# The compile-time quantization pass
# ---------------------------------------------------------------------
@dataclass
class QuantizationReport:
    """What the quantization pass did to one compiled pipeline."""

    bits: int
    granularity: str
    mode: str
    error_threshold: float
    int8_kernel: str = "float"  # resolved GEMM kernel serving dense convs
    layers: List[dict] = field(default_factory=list)

    @property
    def quantized_layers(self) -> int:
        """How many convs execute on int8 codes."""
        return sum(1 for row in self.layers if row["quantized"])

    @property
    def fallback_layers(self) -> int:
        """How many convs stayed float (error threshold or policy)."""
        return sum(1 for row in self.layers if not row["quantized"])

    def describe(self) -> str:
        """One line per conv: quantized or why not."""
        lines = [
            f"int{self.bits} {self.granularity} ({self.mode}, "
            f"kernel={self.int8_kernel}), "
            f"{self.quantized_layers} quantized / {self.fallback_layers} float"
        ]
        for row in self.layers:
            status = "int8" if row["quantized"] else f"float ({row['reason']})"
            lines.append(f"  {row['tag']}: {status}, w_err={row['error']:.4f}")
        return "\n".join(lines)


#: Ops that commute with a positive per-tensor activation scale, so int8
#: codes flow through them unchanged: max-pool (max of codes is the code
#: of the max) and ReLU (clipping codes at zero).
_SCALE_TRANSPARENT = (MaxPoolOp, ReluOp)


def _calibrate_edges(
    ops: List[_InferenceOp], x: np.ndarray, dtype
) -> List[float]:
    """Run one float forward, recording each inter-op edge's |x| peak.

    ``edge[i]`` is the absolute peak of the activation flowing *into*
    ``ops[i]`` (so a conv at position ``i`` reads its input range at
    ``edge[i]`` and its output range at ``edge[i + 1]``).
    """
    state = _ExecState(arena=Arena(), plans=PlanCache())
    if dtype is not None and x.dtype != np.dtype(dtype):
        x = x.astype(dtype)
    edges: List[float] = []
    cur = x
    for op in ops:
        edges.append(float(np.abs(cur).max()) if cur.size else 0.0)
        cur = op.run(cur, state, None)
    edges.append(float(np.abs(cur).max()) if cur.size else 0.0)
    return edges


@dataclass
class _LayerQuant:
    """One conv's eligibility verdict plus its (reused) weight codes."""

    ok: bool
    reason: str
    error: float
    codes: Optional[np.ndarray] = None  # weight or SPM-value codes
    scales: Optional[np.ndarray] = None  # (C_out,)


def _assess(op: _InferenceOp, config: QuantizationConfig) -> _LayerQuant:
    """Quantize a conv's weights once: eligibility verdict + the codes.

    The codes/scales computed for the error check are the same ones the
    lowering needs, so they ride along instead of being recomputed.
    """
    if not isinstance(op, ConvOp) or isinstance(op, QuantConvOp):
        return _LayerQuant(False, "not a conv", 0.0)
    if op.backend is not None:
        return _LayerQuant(False, "forced backend", 0.0)
    op.prepare()  # codes quantize from the (folded, cast) GEMM operand
    if op.encoded is not None:
        codes, scales, error = quantize_encoded_values(op.encoded, config)
    else:
        k = op.weight_t.shape[0] - op.bias_rows
        codes, scales, error = quantize_weight_codes(op.weight_t[:k].T, config)
    if error > config.error_threshold:
        return _LayerQuant(
            False, f"weight error {error:.4f} > {config.error_threshold}", error
        )
    return _LayerQuant(True, "", error, codes=codes, scales=scales)


def _quantize_conv(
    op: ConvOp,
    config: QuantizationConfig,
    quant: _LayerQuant,
    in_scale: float,
    out_scale: Optional[float],
    dtype,
    kernel: Optional[str] = None,
) -> QuantConvOp:
    """Build the :class:`QuantConvOp` replacing a float :class:`ConvOp`.

    ``quant`` carries the weight codes/scales already computed by
    :func:`_assess`, so the weights are quantized exactly once.
    ``kernel`` is the resolved int8 GEMM kernel name (None for the
    float-carried datapath); with a true-integer kernel the bias never
    rides the GEMM operand (it is not an int8 code) — it is applied in
    code space after the integer accumulation instead. The winograd
    marker is deliberately *not* carried over from the float conv: the
    F(m,3) transforms produce non-integer intermediates, which would
    void the int8 path's exact-integer-accumulation contract.
    """
    carry = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
    int8_dense = kernel is not None and not op.use_gather
    scales = quant.scales
    if op.encoded is not None:
        from ..core.spm import EncodedLayer

        value_codes = quant.codes
        # Re-wrap the CODES as an EncodedLayer: the memoized gather plan
        # and grouped/decoded matrices then serve the int8 path, and the
        # dense float weight tensor is never materialised.
        q_encoded = EncodedLayer(
            codes=op.encoded.codes,
            values=value_codes.astype(carry),
            codebook=op.encoded.codebook,
            shape=op.encoded.shape,
        )
        bias = op.epilogue.bias
        if op.use_gather:
            weight_t = None
            bias_rows = 0
            bias_q = None
            if bias is not None:
                bias_q = (bias / (scales * in_scale)).astype(carry)[None, :]
            codes_store = value_codes.astype(np.int8 if config.bits <= 8 else np.int32)
        else:
            decoded_codes = (
                q_encoded.decoded_weight()
                .transpose(0, 2, 3, 1)
                .reshape(op.c_out, -1)
                .T
            )
            weight_t = np.ascontiguousarray(decoded_codes, dtype=carry)
            bias_rows = 0
            bias_q = None
            if bias is not None:
                row = (bias / (scales * in_scale)).astype(carry)[None, :]
                if int8_dense:
                    bias_q = np.rint(row)  # integer accumulator codes
                else:
                    weight_t = np.ascontiguousarray(np.vstack([weight_t, row]))
                    bias_rows = 1
            codes_store = None  # SPM artifact is the value codes on q_encoded
        encoded = q_encoded
    else:
        codes = quant.codes
        weight_t = np.ascontiguousarray(codes.T, dtype=carry)
        bias_rows = 0
        bias_q = None
        bias = op.epilogue.bias
        if bias is not None:
            # Bias rides in the GEMM as a code-space row (real bias
            # divided by the column's fold-back scale) against the
            # column buffer's ones column, exactly like the float path —
            # unless a true-integer kernel runs the GEMM, in which case
            # it is rounded to integer accumulator codes (the classic
            # int32-bias of integer inference) so it can fold into the
            # exact integer accumulation.
            row = (bias / (scales * in_scale)).astype(carry)[None, :]
            if int8_dense:
                bias_q = np.rint(row)
            else:
                weight_t = np.ascontiguousarray(np.vstack([weight_t, row]))
                bias_rows = 1
        encoded = None
        codes_store = codes
    return QuantConvOp(
        weight_t=weight_t,
        bias_rows=bias_rows,
        encoded=encoded,
        use_gather=op.use_gather,
        slab_bytes=op.slab_bytes,
        schedule=op.schedule,
        epilogue=op.epilogue,
        relu=op.relu,
        stride=op.stride,
        padding=op.padding,
        backend=None,
        kernel=op.kernel,
        c_in=op.c_in,
        c_out=op.c_out,
        tag=op.tag,
        dtype=op.dtype,
        _prepared=True,  # the int8 operands above ARE the derived state
        w_scale=np.asarray(scales, dtype=np.float64)[None, :],
        in_scale=in_scale,
        out_scale=out_scale,
        qmax=config.qmax,
        codes_int8=codes_store,
        bias_q=bias_q,
        int8_kernel=kernel if int8_dense else None,
        emit_int8=kernel is not None,
    )


def quantize_pipeline(
    ops: List[_InferenceOp],
    dtype,
    calibration: np.ndarray,
    config: QuantizationConfig,
) -> Tuple[List[_InferenceOp], QuantizationReport]:
    """Rewrite a lowered float op list into its int8 execution form.

    Runs the calibration batch through the float ops once to record
    per-edge activation peaks, then walks the top-level op list tracking
    the activation domain (float vs codes): eligible convs become
    :class:`QuantConvOp` (requantizing straight to the next conv's code
    space in ``"requantize"`` mode), scale-transparent ops (max-pool,
    ReLU) pass codes through unchanged, and everything else — linears,
    average pools, residual blocks, module fallbacks, error-threshold
    fallbacks — gets :class:`QuantizeOp`/:class:`DequantizeOp`
    boundaries inserted around it. Returns the new op list and a
    :class:`QuantizationReport`.
    """
    calibration = np.asarray(calibration)
    if calibration.ndim != 4 or calibration.shape[0] == 0:
        raise ValueError(
            "quantize= needs a non-empty (N, C, H, W) calibration batch "
            "to derive activation scales from"
        )
    calibration = calibration[: config.calibration_images]
    edges = _calibrate_edges(ops, calibration, dtype)
    qmax = config.qmax
    # Resolve the GEMM datapath once for the whole pipeline: int8 codes
    # only fit the int8 kernels at <= 8 bits (wider codes fall back to
    # the float-carried GEMM, which is exact for them in float64).
    if config.bits <= 8:
        kernel = get_int8_kernel(None if config.kernel == "auto" else config.kernel)
    else:
        kernel = "float"
    kernel_name = None if kernel == "float" else kernel
    carry_dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)

    assessed = {}
    report = QuantizationReport(
        bits=config.bits,
        granularity=config.granularity,
        mode=config.mode,
        error_threshold=config.error_threshold,
        int8_kernel=kernel,
    )
    for i, op in enumerate(ops):
        if isinstance(op, ConvOp):
            quant = _assess(op, config)
            assessed[i] = quant
            report.layers.append(
                {
                    "tag": op.tag,
                    "quantized": quant.ok,
                    "reason": quant.reason,
                    "error": quant.error,
                }
            )

    def scale_at(i: int) -> float:
        peak = edges[i]
        return peak / qmax if peak > 0 else 1.0

    def next_is_quant_conv(i: int) -> bool:
        j = i + 1
        while j < len(ops) and isinstance(ops[j], _SCALE_TRANSPARENT):
            j += 1
        return j < len(ops) and j in assessed and assessed[j].ok

    new_ops: List[_InferenceOp] = []
    domain_scale: Optional[float] = None  # None -> float domain
    boundary = 0
    for i, op in enumerate(ops):
        if i in assessed and assessed[i].ok:
            if domain_scale is None:
                in_scale = scale_at(i)
                new_ops.append(
                    QuantizeOp(
                        scale=in_scale,
                        qmax=qmax,
                        tag=f"q{boundary}",
                        int8=kernel_name is not None,
                    )
                )
                boundary += 1
            else:
                in_scale = domain_scale
            requant = config.mode == "requantize" and next_is_quant_conv(i)
            out_scale = scale_at(i + 1) if requant else None
            new_ops.append(
                _quantize_conv(
                    op, config, assessed[i], in_scale, out_scale, dtype,
                    kernel=kernel_name,
                )
            )
            domain_scale = out_scale
            continue
        if isinstance(op, _SCALE_TRANSPARENT) and domain_scale is not None:
            new_ops.append(op)  # codes flow through unchanged
            continue
        if domain_scale is not None:
            # Leaving the quantized region (requantize-mode tails only
            # reach here if a transparent op trails the last conv).
            new_ops.append(
                DequantizeOp(
                    scale=domain_scale, tag=f"q{boundary}", dtype=carry_dtype
                )
            )
            boundary += 1
            domain_scale = None
        new_ops.append(op)
    if domain_scale is not None:
        new_ops.append(
            DequantizeOp(scale=domain_scale, tag=f"q{boundary}", dtype=carry_dtype)
        )
    return new_ops, report


# Registration lives in backends.py (bottom-of-module import) so the
# registry is complete for anyone importing repro.runtime.backends alone.
