"""Pluggable convolution backends for the runtime engine.

Every conv in the repo — training forward passes, SPM-encoded inference,
the accelerator simulator's functional path — reduces to the same
contract: turn ``(x, weight-or-encoding, stride, padding)`` into a
``(windows, C_out)`` output matrix. A :class:`ConvBackend` implements
that contract one way; the registry lets :func:`repro.runtime.dispatch`
pick the right implementation from the request's shape and encoding, and
lets downstream code (tests, benchmarks, future accelerator bindings)
register new ones without touching call-sites.

Built-in backends:

- :class:`DenseGemmBackend` — im2col + BLAS GEMM, the reference path
  (numerically identical to :func:`repro.nn.functional.conv2d`).
- :class:`PatternSparseBackend` — computes directly from SPM storage as
  one grouped-contraction GEMM against the layer's cached gather plan
  and grouped weight matrix (possible because PCNN keeps ``n`` equal
  across a layer's kernels).
- :class:`TiledBackend` — im2col + GEMM over output-row tiles, bounding
  workspace memory for large inputs (ImageNet-scale activations).
- :class:`WinogradBackend` — F(m x m, 3x3) fast convolution for
  3x3/stride-1 requests, the engine-dispatch twin of the compiled
  pipeline's Winograd schedule (same transform matrices, request-dtype
  compute so float64 requests pin to the reference at 1e-9).
- :class:`~repro.runtime.quant.QuantizedBackend` (``"quant"``, defined
  in :mod:`repro.runtime.quant`, registered here) — int8 execution:
  integer weight/activation codes, wide accumulation, scales folded per
  output column. Explicit opt-in only; never auto-selected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from ..nn.functional import im2col
from .arena import Arena
from .plan import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ConvRequest

__all__ = [
    "ConvBackend",
    "Epilogue",
    "DenseGemmBackend",
    "PatternSparseBackend",
    "TiledBackend",
    "WinogradBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]

# The selection policy constants live in repro.runtime.tune (the single
# home of every backend-eligibility rule); re-exported here because the
# slab backends and historical callers read them from this module.
from .tune import (  # noqa: E402  (policy import, see comment above)
    GROUPED_EXPANSION_LIMIT,
    TILE_THRESHOLD_ELEMENTS,
    gather_width_ratio,
)


@dataclass
class Epilogue:
    """Fused post-GEMM work applied in place to the output matrix.

    The classic inference-runtime epilogue: per-output-channel bias add
    and/or ReLU folded into the convolution's GEMM output while the tile
    is still cache-hot, instead of as separate full-tensor passes. The
    engine builds one for every ``bias=`` dispatch; the compiled pipeline
    (:func:`repro.runtime.compile_model`) builds them with the folded BN
    bias and the fused activation.
    """

    bias: Optional[np.ndarray] = None  # (C_out,), added per output channel
    relu: bool = False

    def apply(self, mat: np.ndarray) -> np.ndarray:
        """Apply to a ``(windows, C_out)`` matrix (or row tile) in place."""
        if self.bias is not None:
            # Harmonise dtype so a float64 bias cannot silently promote a
            # float32 activation path; += keeps the add allocation-free.
            mat += self.bias.astype(mat.dtype, copy=False)
        if self.relu:
            np.maximum(mat, 0.0, out=mat)
        return mat


@runtime_checkable
class ConvBackend(Protocol):
    """Protocol every registered conv backend satisfies."""

    name: str

    def supports(self, request: "ConvRequest") -> bool:
        """Whether this backend can execute the request at all."""
        ...

    def execute(
        self,
        request: "ConvRequest",
        plan: ExecutionPlan,
        workspace: Optional[dict] = None,
        epilogue: Optional[Epilogue] = None,
    ) -> np.ndarray:
        """Run the convolution, returning a ``(windows, C_out)`` matrix.

        ``workspace``, when a dict, asks the backend to stash reusable
        intermediates (the dense backend stores ``cols`` for autograd);
        ``workspace["arena"]`` + ``workspace["tag"]`` hand the backend an
        :class:`~repro.runtime.arena.Arena` to draw its scratch buffers
        from instead of allocating. ``epilogue`` is applied in place to
        the output matrix (tile-by-tile in the slab backends) before it
        is returned.
        """
        ...


def _arena_from(workspace: Optional[dict]) -> Tuple[Optional[Arena], str]:
    """Extract the (arena, tag) pair a caller smuggled in via workspace."""
    if not workspace:
        return None, ""
    return workspace.get("arena"), workspace.get("tag", "conv")


def _dense_weight(request: "ConvRequest") -> np.ndarray:
    """Dense weight tensor of a request, decoding SPM storage if needed.

    Decoding is memoized on the ``EncodedLayer``, so repeated forwards
    pay it once.
    """
    if request.weight is not None:
        return request.weight
    return request.encoded.decoded_weight()


def _iter_im2col_row_slabs(
    x: np.ndarray,
    plan: ExecutionPlan,
    workspace_per_row: int,
    arena: Optional[Arena] = None,
    tag: str = "conv",
):
    """Yield ``(r0, r1, cols)`` output-row slabs of the im2col matrix.

    Pads once, then materialises columns slab-by-slab so peak workspace
    stays under ``TILE_THRESHOLD_ELEMENTS`` (``workspace_per_row`` is the
    caller's worst per-output-row element count). Small geometries come
    out as a single slab — the monolithic fast path. With an ``arena``,
    the padded input and every slab's column matrix live in reused
    buffers, so the steady-state loop allocates nothing.
    """
    kh, kw = plan.kernel
    stride, padding = plan.stride, plan.padding
    oh, ow = plan.out_hw
    rows = max(1, min(oh, TILE_THRESHOLD_ELEMENTS // max(1, workspace_per_row)))
    if padding > 0:
        if arena is not None:
            x = arena.padded(f"{tag}:pad", x, padding)
        else:
            x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, c = x.shape[0], x.shape[1]
    for r0 in range(0, oh, rows):
        r1 = min(r0 + rows, oh)
        x_slab = x[:, :, r0 * stride : (r1 - 1) * stride + kh, :]
        out = None
        if arena is not None:
            out = arena.take(
                f"{tag}:cols", (n * (r1 - r0) * ow, c * kh * kw), x.dtype
            )
        cols, _ = im2col(x_slab, (kh, kw), stride, 0, out=out)
        yield r0, r1, cols


class DenseGemmBackend:
    """Reference im2col + GEMM path (what ``nn.functional.conv2d`` runs)."""

    name = "dense"

    def supports(self, request: "ConvRequest") -> bool:
        """Dense weights or an encoding (decoded on demand) both work."""
        return request.weight is not None or request.encoded is not None

    def execute(
        self,
        request: "ConvRequest",
        plan: ExecutionPlan,
        workspace: Optional[dict] = None,
        epilogue: Optional[Epilogue] = None,
    ) -> np.ndarray:
        """Monolithic im2col + one BLAS GEMM (+ in-place epilogue)."""
        weight = _dense_weight(request)
        arena, tag = _arena_from(workspace)
        w_mat = weight.reshape(plan.out_channels, -1)
        if arena is not None:
            x = arena.padded(f"{tag}:pad", request.x, plan.padding)
            cols_buf = arena.take(
                f"{tag}:cols", (plan.windows, w_mat.shape[1]), x.dtype
            )
            cols, _ = im2col(x, plan.kernel, plan.stride, 0, out=cols_buf)
            out = arena.take(
                f"{tag}:out",
                (plan.windows, plan.out_channels),
                np.result_type(cols.dtype, w_mat.dtype),
            )
            np.matmul(cols, w_mat.T, out=out)
        else:
            cols, _ = im2col(request.x, plan.kernel, plan.stride, plan.padding)
            out = cols @ w_mat.T
        if epilogue is not None:
            epilogue.apply(out)
        if workspace is not None:
            workspace["cols"] = cols
            workspace["w_mat"] = w_mat
        return out


class PatternSparseBackend:
    """Grouped-contraction conv straight from SPM storage.

    The paper's regularity argument executed literally: kernels sharing
    an SPM code read the same ``n`` positions, so the layer collapses to
    ``A @ B`` — ``A`` gathers the ``|P| * n`` cached pattern positions
    per input channel from the im2col matrix (a cheap slice, not a
    per-kernel fancy gather) and ``B`` is the layer's memoized grouped
    weight matrix (:meth:`~repro.core.spm.EncodedLayer.grouped_weight_matrix`).
    One BLAS GEMM of ``|P| * n / k^2`` relative width replaces the seed's
    per-pattern Python loop. When the codebook is so diverse that the
    grouped matrix would exceed ``GROUPED_EXPANSION_LIMIT`` times the
    dense weight, the backend falls back to decode + dense GEMM (still
    zero per-call index math). Both paths run over bounded output-row
    slabs, so large inputs never materialise a monolithic im2col.
    """

    name = "pattern"

    def supports(self, request: "ConvRequest") -> bool:
        """Requires SPM storage — dense-only requests have no codes."""
        return request.encoded is not None

    def execute(
        self,
        request: "ConvRequest",
        plan: ExecutionPlan,
        workspace: Optional[dict] = None,
        epilogue: Optional[Epilogue] = None,
    ) -> np.ndarray:
        """Grouped-contraction GEMM over output-row slabs (see class doc)."""
        encoded = request.encoded
        kh, kw = plan.kernel
        c_in = plan.in_channels
        c_out = plan.out_channels
        k2 = kh * kw
        oh, ow = plan.out_hw
        batch = plan.batch
        n = encoded.codebook.n_nonzero
        num_patterns = len(encoded.codebook)
        arena, tag = _arena_from(workspace)

        if gather_width_ratio(num_patterns, n, k2) > GROUPED_EXPANSION_LIMIT:
            # Diverse codebook: the grouped matrix would dwarf the dense
            # weight, so run a GEMM against the memoized decoded weight.
            gather = None
            w_mat = encoded.decoded_weight().reshape(c_out, -1)
            per_row = batch * ow * c_in * k2
        else:
            gather = encoded.gather_plan()
            grouped = encoded.grouped_weight_matrix()  # (|P| * C_in * n, C_out)
            # Worst per-output-row workspace: im2col columns or the
            # gathered A matrix, whichever is wider.
            per_row = batch * ow * max(c_in * k2, grouped.shape[0])

        dtype = np.result_type(request.x.dtype, encoded.values.dtype)
        if arena is not None:
            out = arena.take(f"{tag}:out", (batch, oh, ow, c_out), dtype)
        else:
            out = np.empty((batch, oh, ow, c_out), dtype=dtype)
        for r0, r1, cols in _iter_im2col_row_slabs(
            request.x, plan, per_row, arena=arena, tag=tag
        ):
            if gather is None:
                tile = cols @ w_mat.T
            else:
                # (slab, C_in, |P|, n) -> (slab, |P| * C_in * n), matching
                # the grouped weight matrix's (code, channel, slot) layout.
                # The gather itself still allocates its A matrix — the
                # fancy index has no out= form — but the tile GEMM result
                # is fresh either way, so the epilogue mutates safely.
                cols_r = cols.reshape(-1, c_in, k2)
                gathered = cols_r[:, :, gather.positions_by_code]
                a_mat = gathered.transpose(0, 2, 1, 3).reshape(len(cols_r), -1)
                tile = a_mat @ grouped
            if epilogue is not None:
                epilogue.apply(tile)
            out[:, r0:r1] = tile.reshape(batch, r1 - r0, ow, c_out)
        return out.reshape(batch * oh * ow, c_out)


class TiledBackend:
    """im2col + GEMM over output-row tiles with bounded workspace.

    Pads once, then materialises the column matrix tile-by-tile so the
    peak workspace stays under ``TILE_THRESHOLD_ELEMENTS`` even for
    ImageNet-scale activations where a monolithic im2col would be
    hundreds of megabytes.
    """

    name = "tiled"

    def supports(self, request: "ConvRequest") -> bool:
        """Dense weights or an encoding (decoded on demand) both work."""
        return request.weight is not None or request.encoded is not None

    def execute(
        self,
        request: "ConvRequest",
        plan: ExecutionPlan,
        workspace: Optional[dict] = None,
        epilogue: Optional[Epilogue] = None,
    ) -> np.ndarray:
        """im2col + GEMM tile by tile, epilogue applied per tile."""
        weight = _dense_weight(request)
        kh, kw = plan.kernel
        oh, ow = plan.out_hw
        batch = plan.batch
        arena, tag = _arena_from(workspace)

        w_mat = weight.reshape(plan.out_channels, -1)
        dtype = np.result_type(request.x.dtype, weight.dtype)
        if arena is not None:
            out = arena.take(f"{tag}:out", (batch, oh, ow, plan.out_channels), dtype)
        else:
            out = np.empty((batch, oh, ow, plan.out_channels), dtype=dtype)
        per_row = batch * ow * plan.in_channels * kh * kw
        for r0, r1, cols in _iter_im2col_row_slabs(
            request.x, plan, per_row, arena=arena, tag=tag
        ):
            if arena is not None:
                tile = arena.take(f"{tag}:tile", (len(cols), plan.out_channels), dtype)
                np.matmul(cols, w_mat.T, out=tile)
            else:
                tile = cols @ w_mat.T  # (batch * rows * ow, C_out)
            if epilogue is not None:
                epilogue.apply(tile)
            out[:, r0:r1] = tile.reshape(batch, r1 - r0, ow, plan.out_channels)
        return out.reshape(batch * oh * ow, plan.out_channels)


class WinogradBackend:
    """F(m x m, 3x3) fast convolution for 3x3/stride-1 requests.

    The engine-dispatch twin of the compiled pipeline's Winograd
    schedule (:meth:`repro.runtime.compile.ConvOp._wino_closure`): input
    tiles and the kernel move into the Winograd domain, multiply there
    as one batched GEMM per frequency, and transform back — the same
    :mod:`repro.runtime.winograd` matrices, applied to the engine's
    ``(N, C, H, W)`` layout. The compute dtype follows the request
    (float64 inputs run the transforms in float64), so the result pins
    to the ``conv2d`` reference at the registry-wide 1e-9 tolerance.
    An explicit ``backend="winograd"`` dispatch always runs the fast
    path with the largest legal tile; profitability heuristics belong
    to the tune pass, not to an explicit override.
    """

    name = "winograd"

    def supports(self, request: "ConvRequest") -> bool:
        """3x3 kernels at stride 1 only — the F(m,3) algorithms' domain."""
        if request.weight is None and request.encoded is None:
            return False
        _, _, kh, kw = request.weight_shape
        return (kh, kw) == (3, 3) and request.stride == 1

    def execute(
        self,
        request: "ConvRequest",
        plan: ExecutionPlan,
        workspace: Optional[dict] = None,
        epilogue: Optional[Epilogue] = None,
    ) -> np.ndarray:
        """Transform -> batched Winograd-domain GEMM -> inverse transform."""
        from .winograd import (
            eligible_tiles,
            transforms,
            weight_transform,
            wino_geometry,
        )

        weight = _dense_weight(request)
        arena, tag = _arena_from(workspace)
        n, c_in, c_out = plan.batch, plan.in_channels, plan.out_channels
        oh, ow = plan.out_hw
        p = plan.padding
        tiles = eligible_tiles(
            kernel=plan.kernel, stride=plan.stride, out_hw=(oh, ow), c_in=c_in
        )
        if not tiles:  # pragma: no cover - supports() already gates this
            raise ValueError("winograd backend: request is not 3x3/stride-1")
        m = tiles[0]  # largest legal tile, best-first per WINO_TILES
        th, tw, f, span = wino_geometry(out_hw=(oh, ow), m=m)
        x = request.x
        dtype = np.result_type(x.dtype, weight.dtype)
        _, bt, at = transforms(m, dtype)
        # (C_out, C_in, 3, 3) -> (9, C_in, C_out) rows in im2col window
        # order, matching what weight_transform expects.
        w9 = weight.reshape(c_out, c_in, 9).transpose(2, 1, 0)
        u = weight_transform(w9, m, dtype)  # (f, C_in, C_out)

        # Tile extraction reads m*t + 2 rows/cols; partial edge tiles
        # read zero-fill past the convolution's own padded extent.
        h, w_in = x.shape[2], x.shape[3]
        ph = max(h + 2 * p, m * th + 2)
        pw = max(w_in + 2 * p, m * tw + 2)
        if arena is not None:
            pad = arena.take_filled(f"{tag}:wpad", (n, c_in, ph, pw), dtype, 0.0)
        else:
            pad = np.zeros((n, c_in, ph, pw), dtype=dtype)
        pad[:, :, p : p + h, p : p + w_in] = x

        sn, sc, sh, sw = pad.strides
        tiles6 = np.lib.stride_tricks.as_strided(
            pad, (n, th, tw, span, span, c_in), (sn, m * sh, m * sw, sh, sw, sc)
        )
        pcount = n * th * tw
        if arena is not None:
            d = arena.take(f"{tag}:wd", (f, pcount, c_in), dtype)
            v = arena.take(f"{tag}:wv", (f, pcount, c_in), dtype)
            mmat = arena.take(f"{tag}:wm", (f, pcount, c_out), dtype)
            ybuf = arena.take(f"{tag}:wy", (m * m, pcount * c_out), dtype)
        else:
            d = np.empty((f, pcount, c_in), dtype)
            v = np.empty_like(d)
            mmat = np.empty((f, pcount, c_out), dtype)
            ybuf = np.empty((m * m, pcount * c_out), dtype)
        d.reshape(span, span, n, th, tw, c_in)[...] = tiles6.transpose(3, 4, 0, 1, 2, 5)
        np.matmul(bt, d.reshape(f, pcount * c_in), out=v.reshape(f, pcount * c_in))
        np.matmul(v, u, out=mmat)
        np.matmul(at, mmat.reshape(f, pcount * c_out), out=ybuf)

        out = np.empty((n, oh, ow, c_out), dtype)
        y6 = ybuf.reshape(m, m, n, th, tw, c_out)
        exact = m * th == oh and m * tw == ow
        if exact:
            out.reshape(n, th, m, tw, m, c_out)[...] = y6.transpose(2, 3, 0, 4, 1, 5)
        else:
            full = np.empty((n, m * th, m * tw, c_out), dtype)
            full.reshape(n, th, m, tw, m, c_out)[...] = y6.transpose(2, 3, 0, 4, 1, 5)
            out[...] = full[:, :oh, :ow, :]
        mat = out.reshape(n * oh * ow, c_out)
        if epilogue is not None:
            epilogue.apply(mat)
        return mat


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------
_REGISTRY: Dict[str, ConvBackend] = {}


def register_backend(backend: ConvBackend, overwrite: bool = False) -> ConvBackend:
    """Register a backend under ``backend.name``; returns it for chaining."""
    name = backend.name
    if not name:
        raise ValueError("backend needs a non-empty name")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> ConvBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown conv backend {name!r}; registered: {available_backends()}"
        ) from None


def available_backends() -> List[str]:
    """Names of all registered backends, in registration order."""
    return list(_REGISTRY)


register_backend(PatternSparseBackend())
register_backend(DenseGemmBackend())
register_backend(TiledBackend())
register_backend(WinogradBackend())

# The int8 backend lives in quant.py (it needs the compiled-pipeline op
# machinery) but registers here so the registry is complete for anyone
# importing this module alone. Import last: quant.py imports this
# module's names, all of which are defined by this point.
from .quant import QuantizedBackend  # noqa: E402  (deliberate tail import)

register_backend(QuantizedBackend())
