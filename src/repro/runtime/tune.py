"""Backend selection policy and the per-layer schedule tuner.

This module is the single home of every "which way should this conv
run" decision in the runtime:

- **Static rules.** :data:`GATHER_WIDTH_LIMIT` /
  :func:`prefer_gather` (should a compiled SPM conv gather natively or
  decode to a dense GEMM), :data:`GROUPED_EXPANSION_LIMIT` (when the
  eager pattern backend falls back to decode + dense), and
  :func:`select_backend` (the engine's shape-based backend choice).
  ``compile.py``, ``engine.py`` and ``backends.py`` all import these
  from here instead of keeping private copies.
- **Cost-model tuning** (``tune="cost"``). For each lowered conv the
  tuner ranks its candidate schedules — dense GEMM vs native SPM gather,
  at the default or cache-sized slab tiling — with the analytic
  accelerator cost model (:func:`repro.arch.conv_layer_cost`: a roofline
  over MAC slots and memory traffic), and applies the cheapest. Zero
  measurement, deterministic.
- **Measured tuning** (``tune="measure"``). The cost model only *ranks*;
  the top candidates are then built and timed on a small synthetic
  input, and the winner is recorded in a :class:`TuningCache` persisted
  to ``~/.cache/repro-tune.json`` (override with the
  ``REPRO_TUNE_CACHE`` environment variable), keyed by layer geometry,
  encoding, dtype and CPU count — so the next compile of the same model
  on the same machine applies the winning schedule without measuring
  anything.

The tuner runs as the ``tune`` pass of the compile
:class:`~repro.runtime.passes.PassManager`; ``predict(tune=...)``,
``ModelServer(tune=...)`` and the CLI ``--tune`` flag all funnel here.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "GATHER_WIDTH_LIMIT",
    "GROUPED_EXPANSION_LIMIT",
    "TILE_THRESHOLD_ELEMENTS",
    "gather_width_ratio",
    "prefer_gather",
    "select_backend",
    "ConvSchedule",
    "TuningCache",
    "TuningCacheStats",
    "TuningReport",
    "effective_cpu_count",
    "get_tuning_cache",
    "tune_graph",
]

# ---------------------------------------------------------------------
# Static selection rules (single source of truth)
# ---------------------------------------------------------------------
#: Compiled-pipeline SPM lowering policy: gather natively only when the
#: grouped contraction reads at most this ratio of the dense one's
#: columns (|P| * n / k^2 <= limit), else decode once at compile time.
GATHER_WIDTH_LIMIT = 1.0

#: Eager pattern-backend policy: above this grouped-matrix expansion
#: ratio the backend decodes and runs a dense GEMM instead (its job is
#: demonstrating SPM-regular execution, so the bound is looser).
GROUPED_EXPANSION_LIMIT = 4.0

#: Workspace bound (elements) per im2col / gather slab: above this the
#: slab backends tile over output rows and auto-selection prefers
#: "tiled" over "dense".
TILE_THRESHOLD_ELEMENTS = 1 << 22

#: Workspace budget (bytes) the measured tuner's "cache-sized" slab
#: candidate targets — roughly an L2 slice, so the im2col slab and GEMM
#: tile stay resident between the pack and the multiply.
CACHE_SLAB_BYTES = 1 << 20


def gather_width_ratio(num_patterns: int, n_nonzero: int, kernel_area: int) -> float:
    """Grouped-contraction width relative to the dense one (|P|·n / k²)."""
    return num_patterns * n_nonzero / kernel_area


def prefer_gather(encoded, kernel_area: int, limit: float = GATHER_WIDTH_LIMIT) -> bool:
    """The static gather-eligibility rule for one SPM-encoded layer.

    True when the grouped contraction is no wider than the dense GEMM's,
    so serving straight from SPM storage does not cost extra FLOPs.
    """
    ratio = gather_width_ratio(
        len(encoded.codebook), encoded.codebook.n_nonzero, kernel_area
    )
    return ratio <= limit


def select_backend(request) -> str:
    """Pick an engine backend name from a request's encoding and geometry.

    First match: an SPM encoding routes to ``pattern``; a monolithic
    im2col workspace above :data:`TILE_THRESHOLD_ELEMENTS` routes to
    ``tiled``; everything else runs the ``dense`` reference GEMM.
    (:func:`repro.runtime.engine.select_backend` delegates here.)
    """
    if request.encoded is not None:
        return "pattern"
    n, c_in, h, w = request.x.shape
    _, _, kh, kw = request.weight_shape
    from ..nn.functional import conv_output_size

    oh = conv_output_size(h, kh, request.stride, request.padding)
    ow = conv_output_size(w, kw, request.stride, request.padding)
    if n * oh * ow * c_in * kh * kw > TILE_THRESHOLD_ELEMENTS:
        return "tiled"
    return "dense"


# ---------------------------------------------------------------------
# Tuning cache
# ---------------------------------------------------------------------
#: Environment variable overriding the persisted tuning-cache path.
TUNE_CACHE_ENV = "REPRO_TUNE_CACHE"
#: Environment variable pinning the CPU count used in tuning-cache keys.
#: Worker-pool processes inherit the router's resolved count through it,
#: so a pool never re-probes under a different affinity view.
TUNE_CPUS_ENV = "REPRO_TUNE_CPUS"
# v2: the schedule space grew winograd2/winograd4 modes — v1 entries
# would silently pin pre-Winograd winners, so the key version bumps.
_CACHE_VERSION = 2


def effective_cpu_count() -> int:
    """CPUs this process can actually run on — the tuning-cache key.

    ``os.cpu_count()`` reports the machine, not the process: under CPU
    affinity or cgroup limits (containers, ``taskset``) the router and
    its workers could disagree and key separate cache entries for the
    same hardware budget. Resolution order: the :data:`TUNE_CPUS_ENV`
    override (how pool workers inherit the router's resolved value),
    then ``len(os.sched_getaffinity(0))``, then ``os.cpu_count()``.
    """
    override = os.environ.get(TUNE_CPUS_ENV)
    if override:
        try:
            value = int(override)
        except ValueError:
            value = 0
        if value > 0:
            return value
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_cache_path() -> str:
    """Resolved tuning-cache path (env override, else ``~/.cache``)."""
    override = os.environ.get(TUNE_CACHE_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-tune.json")


@dataclass
class TuningCacheStats:
    """Hit/miss accounting for a :class:`TuningCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        """Total cache probes (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        """JSON-ready view (served on ``GET /stats``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 3),
        }


class TuningCache:
    """Persisted winning schedules, keyed by layer geometry strings.

    Entries are small JSON dicts (``{"mode": ..., "slab_bytes": ...,
    "ips": ..., "source": "measure"}``). The file loads lazily on first
    probe and writes atomically (temp file + rename) on every store, so
    concurrent compiles at worst lose a redundant measurement, never the
    file. A corrupt or missing file behaves as empty.
    """

    def __init__(self, path: Optional[str] = None, autosave: bool = True) -> None:
        self.path = path or default_cache_path()
        self.autosave = autosave
        self.stats = TuningCacheStats()
        self._entries: Optional[Dict[str, dict]] = None
        self._lock = threading.Lock()

    def _load(self) -> Dict[str, dict]:
        if self._entries is None:
            entries: Dict[str, dict] = {}
            try:
                with open(self.path) as fh:
                    raw = json.load(fh)
                if isinstance(raw, dict) and raw.get("version") == _CACHE_VERSION:
                    entries = dict(raw.get("entries", {}))
            except (OSError, ValueError):
                entries = {}
            self._entries = entries
        return self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._load())

    def get(self, key: str) -> Optional[dict]:
        """Cached schedule for ``key`` (counts a hit or miss)."""
        with self._lock:
            entry = self._load().get(key)
            if entry is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return dict(entry) if entry is not None else None

    def put(self, key: str, value: dict) -> None:
        """Store a schedule and (by default) persist immediately."""
        with self._lock:
            self._load()[key] = dict(value)
            self.stats.stores += 1
            if self.autosave:
                self._save_locked()

    def save(self) -> None:
        """Write the cache file atomically (temp + rename)."""
        with self._lock:
            self._save_locked()

    def _save_locked(self) -> None:
        entries = self._load()
        directory = os.path.dirname(self.path) or "."
        try:
            os.makedirs(directory, exist_ok=True)
            tmp = f"{self.path}.tmp.{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump({"version": _CACHE_VERSION, "entries": entries}, fh, indent=1)
                fh.write("\n")
            os.replace(tmp, self.path)
        except OSError:
            # A read-only cache dir must never fail a compile; the
            # schedule still applies, it just is not remembered.
            pass

    def clear(self) -> None:
        """Drop every entry (and the file) and reset the statistics."""
        with self._lock:
            self._entries = {}
            self.stats = TuningCacheStats()
            try:
                os.remove(self.path)
            except OSError:
                pass


_default_cache: Optional[TuningCache] = None
_default_cache_lock = threading.Lock()


def get_tuning_cache() -> TuningCache:
    """The process-wide default :class:`TuningCache` (lazily created)."""
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None or _default_cache.path != default_cache_path():
            _default_cache = TuningCache()
        return _default_cache


def layer_cache_key(
    *,
    c_in: int,
    c_out: int,
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    in_hw: Tuple[int, int],
    encoding: Optional[Tuple[int, int]],
    dtype,
    cpus: int,
) -> str:
    """Stable cache key for one conv layer's schedule.

    Keyed by everything the winning schedule depends on: geometry,
    encoding shape (|P|, n), compile dtype and the machine's CPU count.
    """
    enc = f"P{encoding[0]}n{encoding[1]}" if encoding else "dense"
    dt = np.dtype(dtype).name if dtype is not None else "native"
    return (
        f"v{_CACHE_VERSION}|conv|cin{c_in}|cout{c_out}"
        f"|k{kernel[0]}x{kernel[1]}|s{stride}|p{padding}"
        f"|in{in_hw[0]}x{in_hw[1]}|{enc}|{dt}|cpu{cpus}"
    )


# ---------------------------------------------------------------------
# Schedules and the tuning report
# ---------------------------------------------------------------------
@dataclass
class ConvSchedule:
    """One conv's chosen execution schedule.

    ``mode`` is ``"dense"`` (decode to a dense GEMM when encoded),
    ``"gather"`` (serve natively from SPM storage), or
    ``"winograd2"``/``"winograd4"`` (the F(m x m, 3x3) fast-convolution
    path over decoded weights); ``slab_bytes``
    replaces the default slab-tiling byte budget when set (the budget
    stays batch-adaptive — rows are derived from it per call, so the
    measured footprint holds at any serving batch). ``source`` records
    who decided: the static ``heuristic``, the analytic ``cost`` model,
    a fresh ``measure`` run, or a tuning-``cache`` hit.
    """

    mode: str
    slab_bytes: Optional[int] = None
    source: str = "heuristic"
    score_ms: Optional[float] = None  # analytic estimate (cost mode)
    ips: Optional[float] = None  # measured images/sec (measure mode)

    def describe(self) -> str:
        """Compact annotation, e.g. ``gather/cache`` or ``dense/cost``."""
        slab = (
            f",slab={self.slab_bytes // 1024}KiB" if self.slab_bytes is not None else ""
        )
        return f"{self.mode}/{self.source}{slab}"

    def as_dict(self) -> dict:
        """JSON-ready form (what the cache stores)."""
        out = {"mode": self.mode, "slab_bytes": self.slab_bytes, "source": self.source}
        if self.score_ms is not None:
            out["score_ms"] = round(self.score_ms, 6)
        if self.ips is not None:
            out["ips"] = round(self.ips, 2)
        return out


@dataclass
class TuningReport:
    """What the ``tune`` pass decided for one compiled pipeline."""

    mode: str  # "cost" | "measure"
    layers: List[dict] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    micro_batch: Optional[int] = None

    @property
    def tuned_layers(self) -> int:
        """How many convs received a tuned schedule."""
        return len(self.layers)

    @property
    def changed_layers(self) -> int:
        """How many tuned schedules differ from the static heuristic."""
        return sum(1 for row in self.layers if row["changed"])

    def describe(self) -> str:
        """One line per tuned conv: geometry, schedule, provenance."""
        lines = [
            f"tune={self.mode}: {self.tuned_layers} conv(s), "
            f"{self.changed_layers} changed vs heuristic, "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses"
        ]
        for row in self.layers:
            mark = " *" if row["changed"] else ""
            lines.append(f"  {row['tag']}: {row['geometry']} -> {row['schedule']}{mark}")
        return "\n".join(lines)


# ---------------------------------------------------------------------
# Candidate costing
# ---------------------------------------------------------------------
def _op_geometry(op, in_hw: Tuple[int, int]) -> dict:
    """Geometry facts the cost model needs for one lowered conv."""
    from ..nn.functional import conv_output_size

    kh, kw = op.kernel
    oh = conv_output_size(in_hw[0], kh, op.stride, op.padding)
    ow = conv_output_size(in_hw[1], kw, op.stride, op.padding)
    encoding = None
    if op.encoded is not None:
        encoding = (len(op.encoded.codebook), op.encoded.codebook.n_nonzero)
    return {
        "in_hw": in_hw,
        "out_hw": (oh, ow),
        "kernel_area": kh * kw,
        "encoding": encoding,
    }


def _wino_tile_of(mode: str) -> int:
    """The tile a ``winogradN`` mode names (0 for GEMM modes)."""
    return int(mode[len("winograd") :]) if mode.startswith("winograd") else 0


def _candidate_modes(op, geometry: dict) -> List[str]:
    from .winograd import eligible_tiles

    modes = ["dense"] if op.encoded is None else ["gather", "dense"]
    modes += [
        f"winograd{m}"
        for m in eligible_tiles(
            kernel=op.kernel,
            stride=op.stride,
            out_hw=geometry["out_hw"],
            c_in=op.c_in,
            backend=op.backend,
            use_gather=False,  # winograd replaces the decoded dense GEMM
        )
    ]
    return modes


def _analytic_cost_ms(
    op, geometry: dict, mode: str, itemsize: int, batch: int = 1
) -> float:
    """Rank one candidate with the per-layer accelerator cost model.

    The model is a proxy machine (MAC slots + a memory roofline), not a
    CPU simulator — what matters is the *relative* order of candidates:
    a gather contraction is charged its |P|·n·C_in GEMM width plus the
    extra gathered-operand traffic, a dense one its k²·C_in width, a
    Winograd one its transform GEMMs and 4x-larger weight operand.
    Candidates are ranked at the tuning batch: weight traffic is
    batch-invariant while activation traffic scales, and that ratio is
    exactly what separates Winograd (bigger weights, far fewer MACs)
    from im2col on each layer.
    """
    from ..arch.latency import conv_layer_cost

    k2 = geometry["kernel_area"]
    c_in = op.c_in
    oh, ow = geometry["out_hw"]
    windows = batch * oh * ow
    tile = _wino_tile_of(mode)
    if tile:
        cost = conv_layer_cost(
            out_hw=geometry["out_hw"],
            c_in=c_in,
            c_out=op.c_out,
            kernel_size=op.kernel[0],
            batch=batch,
            winograd_tile=tile,
            itemsize=itemsize,
        )
        return cost.latency_ms
    if mode == "gather":
        num_patterns, n_nonzero = geometry["encoding"]
        width = num_patterns * n_nonzero * c_in
        # The gathered A matrix is materialised per window on top of the
        # im2col columns it is gathered from.
        extra_bytes = float(windows * width * itemsize)
    else:
        width = k2 * c_in
        extra_bytes = 0.0
    cost = conv_layer_cost(
        out_hw=geometry["out_hw"],
        c_in=c_in,
        c_out=op.c_out,
        kernel_size=op.kernel[0],
        batch=batch,
        contraction_width=width,
        extra_bytes=extra_bytes,
        itemsize=itemsize,
    )
    return cost.latency_ms


def _cache_slab_candidate(op, geometry: dict, itemsize: int) -> Optional[int]:
    """Cache-sized slab budget, when it would actually change tiling.

    Returns :data:`CACHE_SLAB_BYTES` if the layer's monolithic workspace
    at the probe batch exceeds it (so the candidate genuinely tiles),
    else ``None`` — the monolithic default is then the same candidate.
    The budget, not a row count, is what gets measured and cached: rows
    derive from it per call, so the footprint holds at any batch.
    """
    oh, ow = geometry["out_hw"]
    k = geometry["kernel_area"] * op.c_in
    workspace = _MEASURE_BATCH * oh * ow * (k + op.c_out) * itemsize
    return CACHE_SLAB_BYTES if workspace > CACHE_SLAB_BYTES else None


# ---------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------
_MEASURE_BATCH = 4
_MEASURE_REPEATS = 3
#: A measured candidate must beat the default schedule by this margin
#: before it replaces it. Probes run on small synthetic batches, so a
#: few percent is measurement noise — switching on it would let the
#: tuner *regress* a schedule the heuristic already had right.
_MEASURE_MARGIN = 0.05


def _measure_layer_ips(op, geometry: dict, dtype, batch: int = _MEASURE_BATCH) -> float:
    """Time one candidate conv op on a synthetic NHWC input.

    Fresh arena and plan cache per candidate (so nothing leaks between
    them), one warm-up run, then best-of-``_MEASURE_REPEATS`` — best
    rather than mean because scheduler noise only ever adds time.
    Probes run at the tuning batch, not at 1: schedules whose fixed
    overhead amortises over the batch (Winograd transforms, gather
    grouping) would otherwise lose probes they win at serving batches.
    """
    from .arena import Arena
    from .compile import _ExecState
    from .plan import PlanCache

    ih, iw = geometry["in_hw"]
    rng = np.random.default_rng(0)
    x = rng.standard_normal((batch, ih, iw, op.c_in)).astype(
        np.dtype(dtype) if dtype is not None else np.float64
    )
    state = _ExecState(arena=Arena(), plans=PlanCache())
    op.run(x, state, None)  # warm: plans, arena buffers, memoized gathers
    best = float("inf")
    for _ in range(_MEASURE_REPEATS):
        start = time.perf_counter()
        op.run(x, state, None)
        best = min(best, time.perf_counter() - start)
    return batch / best if best > 0 else float("inf")


def _measure_chunk_ips(ops: List[object], input_shape, dtype, batch: int, chunk: int) -> float:
    """Whole-pipeline throughput at one micro-batch chunk size.

    One warm-up (plans + arena buffers for this chunk geometry), then
    best-of-two timed runs — noise only ever adds time.
    """
    from .arena import Arena
    from .compile import _ExecState
    from .plan import PlanCache

    rng = np.random.default_rng(0)
    x = rng.standard_normal((batch,) + tuple(input_shape)).astype(
        np.dtype(dtype) if dtype is not None else np.float64
    )
    state = _ExecState(arena=Arena(), plans=PlanCache())

    def run_once() -> None:
        for lo in range(0, batch, chunk):
            cur = x[lo : lo + chunk]
            for op in ops:
                cur = op.run(cur, state, None)

    run_once()  # warm-up
    best = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        run_once()
        best = min(best, time.perf_counter() - start)
    return batch / best if best > 0 else float("inf")


# ---------------------------------------------------------------------
# The tuner
# ---------------------------------------------------------------------
class _ShapeUnknown(Exception):
    """A pipeline op whose spatial output cannot be derived analytically."""


def _conv_shapes_analytic(
    ops: List[object], input_shape
) -> Optional[Dict[int, Tuple[int, int]]]:
    """Each conv op's input (H, W), by pure geometry propagation.

    Walks the op chain applying the same output-size arithmetic the ops
    use at run time (``conv_output_size`` for convs and pools, branches
    recursed for residuals) — no op executes, so cost-mode tuning stays
    genuinely zero-measurement. Returns ``None`` when an op's spatial
    behaviour is unknowable (a ``ModuleOp`` fallback); the caller then
    records shapes with a one-image probe forward instead.
    """
    from ..nn.functional import conv_output_size
    from .compile import (
        AvgPoolOp,
        ConvOp,
        FlattenOp,
        GlobalAvgPoolOp,
        MaxPoolOp,
        ModuleOp,
        ResidualOp,
    )

    shapes: Dict[int, Tuple[int, int]] = {}

    def out_hw(hw, kernel, stride, padding) -> Tuple[int, int]:
        return (
            conv_output_size(hw[0], kernel, stride, padding),
            conv_output_size(hw[1], kernel, stride, padding),
        )

    def walk(op_list: List[object], hw):
        for op in op_list:
            if isinstance(op, ResidualOp):
                body_hw = walk(op.body, hw)
                walk(op.shortcut, hw)
                hw = body_hw  # the add requires both branches to agree
            elif isinstance(op, ConvOp):
                shapes[id(op)] = hw
                hw = out_hw(hw, op.kernel[0], op.stride, op.padding)
            elif isinstance(op, MaxPoolOp):
                hw = out_hw(hw, op.kernel, op.stride, op.padding)
            elif isinstance(op, AvgPoolOp):
                hw = out_hw(hw, op.kernel, op.stride, 0)
            elif isinstance(op, (GlobalAvgPoolOp, FlattenOp)):
                hw = None  # spatial pipeline ends (no convs can follow)
            elif isinstance(op, ModuleOp):
                raise _ShapeUnknown(type(op.module).__name__)
            # Layout casts, ReLU, BN, linears, quantize/dequantize
            # boundaries: spatial dims pass through unchanged.
        return hw

    try:
        walk(ops, (input_shape[1], input_shape[2]))
    except _ShapeUnknown:
        return None
    return shapes


def _record_conv_shapes(ops: List[object], x: np.ndarray, state) -> Dict[int, Tuple[int, int]]:
    """Probe-forward fallback: record each conv's input (H, W) by running.

    Only used when :func:`_conv_shapes_analytic` bails on a ``ModuleOp``
    fallback. Residual ops are recursed manually (mirroring their run
    semantics) so branch convs get their true input geometry.
    """
    from .compile import ConvOp, ResidualOp

    shapes: Dict[int, Tuple[int, int]] = {}

    def walk(op_list: List[object], cur: np.ndarray) -> np.ndarray:
        for op in op_list:
            if isinstance(op, ResidualOp):
                out = walk(op.body, cur)
                identity = walk(op.shortcut, cur)
                cur = (out if out is not cur else cur.copy()) + identity
                continue
            if isinstance(op, ConvOp):
                shapes[id(op)] = (cur.shape[1], cur.shape[2])  # NHWC
            cur = op.run(cur, state, None)
        return cur

    walk(ops, x)
    return shapes


def tune_graph(graph, ctx) -> TuningReport:
    """Tune every conv in ``graph`` in place; returns the report.

    ``ctx`` is the compile :class:`~repro.runtime.passes.CompileContext`
    — it supplies the tune mode (``"cost"``/``"measure"``), the model
    input shape (needed to derive per-layer geometry), the compile dtype
    and the :class:`TuningCache`.
    """
    from .arena import Arena
    from .compile import ConvOp, _ExecState
    from .plan import PlanCache
    from .quant import QuantConvOp

    mode = ctx.tune
    if mode not in ("cost", "measure"):
        raise ValueError(f"tune= must be 'cost' or 'measure', got {mode!r}")
    if ctx.input_shape is None:
        raise ValueError(
            "tune= needs the model input shape to derive per-layer "
            "geometry; pass input_shape=(C, H, W) to compile_model "
            "(predict/serving/CLI fill it in automatically)"
        )
    cache = ctx.tuning_cache if ctx.tuning_cache is not None else get_tuning_cache()
    cpus = effective_cpu_count()
    itemsize = np.dtype(ctx.dtype).itemsize if ctx.dtype is not None else 8
    report = TuningReport(mode=mode)

    ops = graph.op_list()
    shapes = _conv_shapes_analytic(ops, ctx.input_shape)
    if shapes is None:
        # A ModuleOp fallback hides its spatial behaviour: fall back to
        # one probe forward (the ops involved get invalidated below, so
        # the probe's heuristic GEMM state never leaks into serving).
        probe = np.zeros((1,) + tuple(ctx.input_shape))
        if ctx.dtype is not None:
            probe = probe.astype(ctx.dtype)
        shapes = _record_conv_shapes(
            ops, probe, _ExecState(arena=Arena(), plans=PlanCache())
        )

    for node in graph.walk():
        op = node.op
        if not isinstance(op, ConvOp) or isinstance(op, QuantConvOp):
            continue
        if op.backend is not None:
            continue  # an explicit backend override outranks tuning
        in_hw = shapes.get(id(op))
        if in_hw is None:  # unreached op (should not happen)
            continue
        geometry = _op_geometry(op, in_hw)
        if op.wino_m < 0:
            # Auto marker from a shape-blind winograd pass: the tuner
            # knows the geometry, so resolve it to a concrete default.
            from .winograd import default_tile, eligible_tiles

            op.wino_m = default_tile(
                out_hw=geometry["out_hw"],
                c_in=op.c_in,
                tiles=eligible_tiles(
                    kernel=op.kernel,
                    stride=op.stride,
                    out_hw=geometry["out_hw"],
                    c_in=op.c_in,
                    backend=op.backend,
                    use_gather=op.use_gather,
                ),
            )
        if op.wino_m:
            heuristic_mode = f"winograd{op.wino_m}"
        else:
            heuristic_mode = "gather" if op.use_gather else "dense"
        key = layer_cache_key(
            c_in=op.c_in,
            c_out=op.c_out,
            kernel=op.kernel,
            stride=op.stride,
            padding=op.padding,
            in_hw=in_hw,
            encoding=geometry["encoding"],
            dtype=ctx.dtype,
            cpus=cpus,
        )
        schedule = None
        if mode == "measure":
            hit = cache.get(key)
            if hit is not None:
                schedule = ConvSchedule(
                    mode=hit["mode"],
                    slab_bytes=hit.get("slab_bytes"),
                    source="cache",
                    ips=hit.get("ips"),
                )
                report.cache_hits += 1
            else:
                report.cache_misses += 1
        if schedule is None:
            rank_batch = ctx.tune_batch or _MEASURE_BATCH
            ranked = sorted(
                _candidate_modes(op, geometry),
                key=lambda m: _analytic_cost_ms(op, geometry, m, itemsize, rank_batch),
            )
            if mode == "cost":
                best = ranked[0]
                schedule = ConvSchedule(
                    mode=best,
                    slab_bytes=None,
                    source="cost",
                    score_ms=_analytic_cost_ms(
                        op, geometry, best, itemsize, rank_batch
                    ),
                )
            else:
                # The heuristic's own schedule measures first and is the
                # default: an alternative must beat it by _MEASURE_MARGIN
                # (probes are small and noisy; a coin-flip switch could
                # regress a schedule the static rule already had right).
                default = ConvSchedule(mode=heuristic_mode, slab_bytes=None)
                candidates: List[ConvSchedule] = [default]
                for cand_mode in ranked:
                    if cand_mode != heuristic_mode:
                        candidates.append(ConvSchedule(mode=cand_mode, slab_bytes=None))
                    if _wino_tile_of(cand_mode):
                        continue  # winograd ignores slab tiling
                    slab = _cache_slab_candidate(op, geometry, itemsize)
                    if slab is not None:
                        candidates.append(ConvSchedule(mode=cand_mode, slab_bytes=slab))
                for cand in candidates:
                    variant = op.clone_with(
                        use_gather=(cand.mode == "gather"),
                        slab_bytes=cand.slab_bytes,
                        wino_m=_wino_tile_of(cand.mode),
                    )
                    cand.ips = _measure_layer_ips(
                        variant, geometry, ctx.dtype, rank_batch
                    )
                schedule = max(candidates, key=lambda c: c.ips)
                # Never persist a winner that did not beat the default
                # schedule by the noise margin: probe batches are small,
                # and a cached regression would outlive the noisy run
                # that produced it (the bench guard checks the invariant
                # end to end as tuned-vs-compiled throughput).
                if (
                    schedule is not default
                    and schedule.ips < default.ips * (1.0 + _MEASURE_MARGIN)
                ):
                    schedule = default
                schedule.source = "measure"
                cache.put(key, schedule.as_dict())
        op.use_gather = schedule.mode == "gather"
        op.slab_bytes = schedule.slab_bytes
        op.wino_m = _wino_tile_of(schedule.mode)
        op.schedule = schedule
        # The probe forward above already built GEMM state under the
        # heuristic schedule; drop it so finalize rebuilds for the
        # tuned one (bias rows differ between gather and dense).
        op.invalidate()
        report.layers.append(
            {
                "tag": op.tag,
                "geometry": (
                    f"{op.c_in}x{in_hw[0]}x{in_hw[1]} -> {op.c_out}, "
                    f"k{op.kernel[0]} s{op.stride}"
                    + (
                        f", |P|={geometry['encoding'][0]} n={geometry['encoding'][1]}"
                        if geometry["encoding"]
                        else ""
                    )
                ),
                "key": key,
                "schedule": schedule.describe(),
                "mode": schedule.mode,
                "slab_bytes": schedule.slab_bytes,
                "source": schedule.source,
                "changed": schedule.mode != heuristic_mode
                or schedule.slab_bytes is not None,
            }
        )

    if mode == "measure":
        report.micro_batch = _tune_chunk(graph, ctx, cache, report, cpus)
    return report


def _tune_chunk(graph, ctx, cache: TuningCache, report: TuningReport, cpus: int) -> Optional[int]:
    """Pick the micro-batch chunk size for the whole tuned pipeline.

    Measured at ``ctx.tune_batch`` images over halving chunk candidates;
    the winner persists in the tuning cache keyed by the pipeline's
    layer-key signature, so a warm cache skips the measurement entirely.
    """
    import hashlib

    batch = ctx.tune_batch
    if batch is None or batch < 2:
        return None
    signature = hashlib.sha256(
        "+".join(row["key"] for row in report.layers).encode()
    ).hexdigest()[:16]
    key = f"v{_CACHE_VERSION}|chunk|{signature}|b{batch}|cpu{cpus}"
    hit = cache.get(key)
    if hit is not None:
        report.cache_hits += 1
        return hit.get("micro_batch")
    report.cache_misses += 1
    ops = graph.op_list()
    candidates = []
    chunk = batch
    while chunk >= max(1, batch // 4):
        candidates.append(chunk)
        chunk //= 2
    # Full-batch chunking (what predict does untuned) is the default; a
    # smaller chunk must beat it by the measurement margin to win.
    best, best_ips = None, -1.0
    default_ips = None
    for chunk in candidates:
        ips = _measure_chunk_ips(ops, ctx.input_shape, ctx.dtype, batch, chunk)
        if chunk == batch:
            default_ips = ips
        if ips > best_ips:
            best, best_ips = chunk, ips
    if (
        best != batch
        and default_ips is not None
        and best_ips < default_ips * (1.0 + _MEASURE_MARGIN)
    ):
        best, best_ips = batch, default_ips
    # "Best chunk == the whole probe batch" means splitting never won;
    # record None so predict keeps its normal (unsplit / per-worker)
    # chunking instead of capping serving batches at the probe size.
    chunk_choice = None if best == batch else best
    cache.put(
        key,
        {"micro_batch": chunk_choice, "ips": round(best_ips, 2), "source": "measure"},
    )
    return chunk_choice
