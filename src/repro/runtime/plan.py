"""Execution plans and the plan cache for the conv runtime engine.

Planning a convolution — output geometry, tiling splits, gather-index
layout — depends only on *shapes* (input shape, weight shape, stride,
padding), never on the values flowing through. The engine therefore
separates the two: a :class:`PlanCache` memoizes one
:class:`ExecutionPlan` per distinct geometry (output size validated and
computed once), so repeated forward passes — batched inference,
compression sweeps, benchmark loops — pay the planning cost exactly
once.

Pattern *gather* indices (the ``col_idx`` arrays derived from SPM codes)
additionally depend on a layer's codes/codebook; those are cached on the
:class:`repro.core.spm.EncodedLayer` itself (see ``gather_plan()``), so
the plan cache here can stay purely geometric and never worries about
weight mutation or object identity reuse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..nn.functional import conv_output_size

__all__ = ["ExecutionPlan", "PlanCache", "PlanCacheStats"]

PlanKey = Tuple[Any, ...]


@dataclass
class ExecutionPlan:
    """Memoized per-geometry convolution plan.

    Holds the validated im2col geometry shared by every backend. Plans
    are shared by every request with the same key, so any state added
    here must be derivable from the key's shapes alone — never from a
    particular layer's codebook or values (layer-dependent caches belong
    on the ``EncodedLayer``).
    """

    key: PlanKey
    batch: int
    in_channels: int
    out_channels: int
    kernel: Tuple[int, int]
    stride: int
    padding: int
    out_hw: Tuple[int, int]

    @property
    def windows(self) -> int:
        """Output rows of the im2col GEMM: ``N * OH * OW``."""
        oh, ow = self.out_hw
        return self.batch * oh * ow

    @property
    def im2col_elements(self) -> int:
        """Size of the full im2col matrix this geometry implies."""
        kh, kw = self.kernel
        return self.windows * self.in_channels * kh * kw

    @property
    def nbytes(self) -> int:
        """Workspace bytes this plan pins while cached.

        The plan object itself is a few hundred bytes; what a cached
        plan really *costs* is the im2col + output workspace the engine
        keeps warm in its arena for that geometry. Charging the implied
        float32 working set makes the cache's LRU byte-aware: a VGG
        conv2 plan (~37 MB of columns) weighs ~3000x a 4x4 toy plan
        instead of the same single slot.
        """
        return 4 * (self.im2col_elements + self.windows * self.out_channels)

    @classmethod
    def build(
        cls,
        key: PlanKey,
        x_shape: Tuple[int, int, int, int],
        weight_shape: Tuple[int, int, int, int],
        stride: int,
        padding: int,
    ) -> "ExecutionPlan":
        """Validate a conv geometry and build its plan (raises on a
        collapsed output size)."""
        n, c_in, h, w = x_shape
        c_out, _, kh, kw = weight_shape
        oh = conv_output_size(h, kh, stride, padding)
        ow = conv_output_size(w, kw, stride, padding)
        if oh <= 0 or ow <= 0:
            raise ValueError(
                f"convolution geometry collapses: input {h}x{w}, kernel "
                f"{kh}x{kw}, stride {stride}, padding {padding} -> {oh}x{ow}"
            )
        return cls(
            key=key,
            batch=n,
            in_channels=c_in,
            out_channels=c_out,
            kernel=(kh, kw),
            stride=stride,
            padding=padding,
            out_hw=(oh, ow),
        )


@dataclass
class PlanCacheStats:
    """Hit/miss accounting for a :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes: int = 0  # implied workspace bytes of the currently cached plans

    @property
    def lookups(self) -> int:
        """Total cache probes (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from cache (1.0 when warm)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """LRU cache of :class:`ExecutionPlan` keyed by geometry.

    Keys are pure value tuples (backend name + shapes + stride/padding),
    so a cached plan can never go stale through weight mutation — only
    through an explicit :meth:`invalidate` / :meth:`clear`, which exist
    for callers that want deterministic re-planning (tests, benchmarks).

    Eviction is **byte-aware**: each plan is charged its implied
    workspace (:attr:`ExecutionPlan.nbytes`), and the LRU evicts while
    either the entry count exceeds ``maxsize`` *or* the summed charge
    exceeds ``max_bytes``. Entry-count-only eviction let sixteen
    VGG-sized geometries cost the same as sixteen 4x4 toys; under a
    fleet memory budget the byte charge is what matters. The most
    recently used plan is never evicted, so a single plan larger than
    ``max_bytes`` still serves (the budget degrades to one resident
    geometry rather than thrashing).
    """

    def __init__(self, maxsize: int = 256, max_bytes: Optional[int] = None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None for unbounded)")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self._plans: "OrderedDict[PlanKey, ExecutionPlan]" = OrderedDict()
        self.stats = PlanCacheStats()
        # Plan caches are shared across the thread pool that
        # predict(workers=N) runs micro-batches on; the lock keeps the
        # LRU bookkeeping consistent (planning itself is pure, so a rare
        # duplicate build would only waste a few microseconds — the lock
        # mainly protects the OrderedDict reordering).
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    @property
    def nbytes(self) -> int:
        """Summed implied-workspace charge of the cached plans."""
        return self.stats.bytes

    def _over_budget(self) -> bool:
        if len(self._plans) > self.maxsize:
            return True
        return self.max_bytes is not None and self.stats.bytes > self.max_bytes

    def get_or_build(
        self, key: PlanKey, builder: Callable[[], ExecutionPlan]
    ) -> ExecutionPlan:
        """Return the cached plan for ``key``, building (and caching)
        it via ``builder`` on a miss; thread-safe, LRU-evicting by
        entry count *and* byte charge."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.stats.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.stats.misses += 1
            plan = builder()
            self._plans[key] = plan
            self.stats.bytes += plan.nbytes
            while len(self._plans) > 1 and self._over_budget():
                _, evicted = self._plans.popitem(last=False)
                self.stats.bytes -= evicted.nbytes
                self.stats.evictions += 1
            return plan

    def invalidate(self, key: PlanKey) -> bool:
        """Drop one plan; returns whether it was present."""
        with self._lock:
            plan = self._plans.pop(key, None)
            if plan is not None:
                self.stats.bytes -= plan.nbytes
            return plan is not None

    def clear(self) -> int:
        """Drop every plan and reset the statistics; returns the byte
        charge released (fleet demotions feed this to the ledger)."""
        with self._lock:
            freed = self.stats.bytes
            self._plans.clear()
            self.stats = PlanCacheStats()
            return freed
