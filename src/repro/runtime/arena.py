"""Preallocated workspace arenas for the compiled inference pipeline.

A :class:`Arena` owns the large scratch buffers a steady-state serving
loop needs — im2col column matrices, GEMM outputs, zero-padded input
copies — keyed by ``(tag, shape, dtype)``. The first request for a key
allocates; every later request returns the same buffer, so a compiled
model's hot loop does zero large allocations once warm.

Buffers are plain ``np.empty`` storage except for :meth:`take_filled`,
which fills the buffer with a constant exactly once at allocation. That
is the padding trick: a conv's zero-padded input buffer is zeroed once,
then every call only overwrites the interior region — the border stays
zero forever without a per-call ``np.pad``.

Arenas are deliberately **not** thread-safe: concurrent micro-batches
(``predict(..., workers=N)``) each run on their own thread-local arena
(see :class:`repro.runtime.compile.CompiledModel`), which also keeps
buffer reuse free of cross-request aliasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["Arena", "ArenaStats"]

ArenaKey = Tuple[str, Tuple[int, ...], np.dtype]


@dataclass
class ArenaStats:
    """Allocation accounting for one :class:`Arena`."""

    allocations: int = 0
    reuses: int = 0
    bytes_allocated: int = 0
    by_tag: Dict[str, int] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        """Total buffer requests served (allocations + reuses)."""
        return self.allocations + self.reuses

    @property
    def reuse_rate(self) -> float:
        """Fraction of requests served from an existing buffer;
        approaches 1.0 once a serving loop is warm."""
        return self.reuses / self.requests if self.requests else 0.0


class Arena:
    """Reusable scratch buffers keyed by ``(tag, shape, dtype)``.

    Tags namespace the buffers per consumer (one per compiled op and
    role), so two ops never hand out the same storage — the aliasing
    guarantee the compiled executor's in-place epilogues rely on.
    """

    def __init__(self) -> None:
        self._buffers: Dict[ArenaKey, np.ndarray] = {}
        self.stats = ArenaStats()

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def _get(self, tag: str, shape: Tuple[int, ...], dtype, factory) -> np.ndarray:
        """Cache lookup + allocation/stats bookkeeping shared by take*."""
        key = (tag, tuple(shape), np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = factory(key[1], key[2])
            self._buffers[key] = buffer
            self.stats.allocations += 1
            self.stats.bytes_allocated += buffer.nbytes
            self.stats.by_tag[tag] = self.stats.by_tag.get(tag, 0) + buffer.nbytes
        else:
            self.stats.reuses += 1
        return buffer

    def take(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Return the reusable buffer for ``(tag, shape, dtype)``.

        Contents are undefined on first allocation and whatever the last
        user left behind afterwards — callers must overwrite fully.
        """
        return self._get(tag, shape, dtype, np.empty)

    def take_filled(
        self, tag: str, shape: Tuple[int, ...], dtype, fill: float
    ) -> np.ndarray:
        """Like :meth:`take`, but filled with ``fill`` once at allocation.

        Callers that only ever write an interior sub-region (padded conv
        inputs, -inf-padded pool inputs) get constant borders for free on
        every reuse.
        """
        return self._get(tag, shape, dtype, lambda s, d: np.full(s, fill, dtype=d))

    def padded(self, tag: str, x: np.ndarray, padding: int) -> np.ndarray:
        """Zero-padded copy of ``x`` in a reused buffer (NCHW, symmetric).

        The border is zeroed once at allocation; each call copies only the
        interior, replacing a per-call ``np.pad`` with a single memcpy.
        """
        if padding <= 0:
            return x
        n, c, h, w = x.shape
        buffer = self.take_filled(
            tag, (n, c, h + 2 * padding, w + 2 * padding), x.dtype, 0.0
        )
        buffer[:, :, padding : padding + h, padding : padding + w] = x
        return buffer

    def padded_nhwc(self, tag: str, x: np.ndarray, padding: int) -> np.ndarray:
        """Channels-last variant of :meth:`padded` (pads H and W axes)."""
        if padding <= 0:
            return x
        n, h, w, c = x.shape
        buffer = self.take_filled(
            tag, (n, h + 2 * padding, w + 2 * padding, c), x.dtype, 0.0
        )
        buffer[:, padding : padding + h, padding : padding + w, :] = x
        return buffer

    def release(self, tag: Optional[str] = None) -> int:
        """Drop all buffers, or only those registered under ``tag``.

        Returns the bytes released, so residency demotion can reconcile
        its ledger against what actually came off the heap.
        """
        if tag is None:
            freed = self.nbytes
            self._buffers.clear()
            return freed
        freed = 0
        for key in [k for k in self._buffers if k[0] == tag]:
            freed += self._buffers[key].nbytes
            del self._buffers[key]
        return freed
