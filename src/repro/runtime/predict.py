"""Batched inference API — the runtime engine's first scenario win.

:func:`predict` runs a model forward in eval/no-grad mode over a batch of
inputs, optionally split into micro-batches. Micro-batching keeps every
chunk's im2col workspace resident in cache (and bounded in memory) while
the engine's plan cache guarantees the per-geometry planning cost is
paid once for the whole run — the serving-style loop the ROADMAP's
"heavy traffic" north star asks for.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from .. import nn

__all__ = ["PredictStats", "predict", "conv_backend_override"]


@dataclass
class PredictStats:
    """Timing/shape accounting of one :func:`predict` call."""

    batch: int = 0
    micro_batch: Optional[int] = None
    chunks: int = 0
    seconds: float = 0.0
    chunk_seconds: List[float] = field(default_factory=list)

    @property
    def images_per_second(self) -> float:
        return self.batch / self.seconds if self.seconds > 0 else float("inf")


@contextmanager
def conv_backend_override(model: nn.Module, backend: Optional[str]) -> Iterator[None]:
    """Temporarily force every Conv2d in ``model`` onto one backend."""
    convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
    saved = [conv.backend for conv in convs]
    try:
        if backend is not None:
            for conv in convs:
                conv.backend = backend
        yield
    finally:
        for conv, previous in zip(convs, saved):
            conv.backend = previous


def predict(
    model: nn.Module,
    x: np.ndarray,
    *,
    micro_batch: Optional[int] = None,
    backend: Optional[str] = None,
    stats: Optional[PredictStats] = None,
) -> np.ndarray:
    """Run ``model`` over a batch of inputs through the runtime engine.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`; put into eval mode for the call and
        restored to its previous mode afterwards.
    x:
        Inputs ``(N, C, H, W)``.
    micro_batch:
        Split size along the batch axis; ``None`` runs one chunk. The
        last chunk may be smaller.
    backend:
        Force a specific conv backend for the whole call (e.g.
        ``"tiled"``); ``None`` lets the engine auto-select per layer.
    stats:
        Optional :class:`PredictStats` filled in with timings.

    Returns
    -------
    Stacked model outputs ``(N, ...)`` as a numpy array.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) inputs, got shape {x.shape}")
    if micro_batch is not None and micro_batch < 1:
        raise ValueError("micro_batch must be >= 1")
    if x.shape[0] == 0:
        raise ValueError("empty batch: predict() needs at least one input")
    batch = x.shape[0]
    step = batch if micro_batch is None else micro_batch

    was_training = model.training
    model.eval()
    outputs = []
    start = time.perf_counter()
    try:
        with nn.no_grad(), conv_backend_override(model, backend):
            for lo in range(0, batch, step):
                chunk_start = time.perf_counter()
                out = model(nn.Tensor(x[lo : lo + step]))
                outputs.append(out.data)
                if stats is not None:
                    stats.chunk_seconds.append(time.perf_counter() - chunk_start)
    finally:
        model.train(was_training)

    result = outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)
    if stats is not None:
        stats.batch = batch
        stats.micro_batch = micro_batch
        stats.chunks = len(outputs)
        stats.seconds = time.perf_counter() - start
    return result
