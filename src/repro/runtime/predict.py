"""Batched inference API — the runtime engine's serving entry point.

:func:`predict` runs a model forward in eval/no-grad mode over a batch of
inputs, optionally split into micro-batches. Micro-batching keeps every
chunk's im2col workspace resident in cache (and bounded in memory) while
the engine's plan cache guarantees the per-geometry planning cost is
paid once for the whole run — the serving-style loop the ROADMAP's
"heavy traffic" north star asks for.

Two throughput levers stack on top:

- ``compile=True`` (or passing a
  :class:`~repro.runtime.compile.CompiledModel` directly) runs the
  lowered pipeline — BN folded into convs, fused bias/ReLU epilogues,
  float32 parameters, zero-allocation buffer arenas — instead of the
  float64 module graph.
- ``workers=N`` fans micro-batches out over a thread pool. The GEMMs
  dominating the compiled path run inside BLAS, which releases the GIL,
  so the chunks genuinely overlap; compiled execution state is
  thread-local, so one compiled model serves all workers.
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from .. import nn
from .compile import CompiledModel, compile_model

__all__ = ["PredictStats", "predict", "conv_backend_override"]

# Worker threads are shared across predict() calls: compiled-model
# execution state is keyed by thread identity (thread-local arenas), so
# persistent threads are what make repeated predict(..., workers=N)
# serving loops allocation-free after warm-up — a fresh pool per call
# would rebuild every arena every call. One pool per distinct size,
# never shut down (a handful of sizes in practice): replacing a live
# pool would race concurrent predict() calls still holding it.
_pool_lock = threading.Lock()
_pools: dict = {}


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    with _pool_lock:
        pool = _pools.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-predict-{workers}"
            )
            _pools[workers] = pool
        return pool


@dataclass
class PredictStats:
    """Timing/shape accounting of one :func:`predict` call."""

    batch: int = 0
    micro_batch: Optional[int] = None
    chunks: int = 0
    workers: int = 1
    compiled: bool = False
    seconds: float = 0.0
    chunk_seconds: List[float] = field(default_factory=list)

    @property
    def images_per_second(self) -> float:
        """End-to-end throughput of the call (batch / wall seconds)."""
        return self.batch / self.seconds if self.seconds > 0 else float("inf")


@contextmanager
def conv_backend_override(model: nn.Module, backend: Optional[str]) -> Iterator[None]:
    """Temporarily force every Conv2d in ``model`` onto one backend."""
    convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
    saved = [conv.backend for conv in convs]
    try:
        if backend is not None:
            for conv in convs:
                conv.backend = backend
        yield
    finally:
        for conv, previous in zip(convs, saved):
            conv.backend = previous


# Memoized empty-batch output geometry, keyed weakly by model object ->
# {(compile?, input shape, input dtype): (output shape, output dtype)}.
# Output geometry is a function of the architecture and input geometry
# alone (weight *values* never move it), so a hot serving loop that
# polls with empty flushes pays the one-image probe forward exactly once
# per model and geometry.
_probe_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _probe_output(
    model: Union[nn.Module, CompiledModel], want_compiled: bool, x: np.ndarray
) -> Tuple[Tuple[int, ...], np.dtype]:
    """Output (shape-tail, dtype) via a cached one-image probe forward."""
    key = (want_compiled, x.shape[1:], np.dtype(x.dtype))
    try:
        cache = _probe_cache.setdefault(model, {})
    except TypeError:  # un-weakref-able model: probe without memoizing
        cache = {}
    entry = cache.get(key)
    if entry is None:
        probe = np.zeros((1,) + x.shape[1:], dtype=x.dtype)
        if want_compiled and not isinstance(model, CompiledModel):
            out = compile_model(model)(probe)
        elif isinstance(model, CompiledModel):
            out = model(probe)
        else:
            was_training = model.training
            model.eval()
            try:
                with nn.no_grad():
                    out = model(nn.Tensor(probe, dtype=None)).data
            finally:
                model.train(was_training)
        entry = (out.shape[1:], out.dtype)
        cache[key] = entry
    return entry


def predict(
    model: Union[nn.Module, CompiledModel],
    x: np.ndarray,
    *,
    micro_batch: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    executor: Optional[ThreadPoolExecutor] = None,
    compile: bool = False,
    quantize=None,
    calibration: Optional[np.ndarray] = None,
    tune: Optional[str] = None,
    tuning_cache=None,
    stats: Optional[PredictStats] = None,
) -> np.ndarray:
    """Run ``model`` over a batch of inputs through the runtime engine.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` (put into eval mode for the call and
        restored afterwards) or an already-lowered
        :class:`~repro.runtime.compile.CompiledModel`.
    x:
        Inputs ``(N, C, H, W)``.
    micro_batch:
        Split size along the batch axis; ``None`` runs one chunk (or,
        with ``workers``, one chunk per worker). The last chunk may be
        smaller.
    backend:
        Force a specific conv backend for the whole call (e.g.
        ``"tiled"``); ``None`` lets the engine auto-select per layer.
    workers:
        Run micro-batches on a thread pool of this size. BLAS releases
        the GIL during the GEMMs that dominate inference, so chunks
        overlap on real cores. ``None``/``1`` keeps the sequential loop.
        Pools are created lazily and shared across calls (one per
        distinct size), so repeated serving loops never pay pool (or
        thread-local arena) startup per call.
    executor:
        Bring-your-own pool used instead of the shared thread pool — a
        ``ThreadPoolExecutor`` (callers that already own a pool or want
        bounded lifetimes in tests), or a
        :class:`~repro.runtime.workerpool.WorkerPool` of inference
        *processes*, recognised by its ``is_process_pool`` marker:
        chunks then travel over shared-memory rings to workers holding
        read-only views of the same weights, which is what scales past
        the GIL. A process pool is bound to one compiled model, so
        ``model`` must be that exact :class:`CompiledModel`; ``workers``
        defaults to the pool's process count and ``backend=`` overrides
        are rejected (workers run the pipeline as compiled).
    compile:
        Lower the model with :func:`~repro.runtime.compile.compile_model`
        for this call (BN folding, fused epilogues, float32, arenas).
        Compilation snapshots the weights, so repeated serving loops
        should compile once themselves and pass the compiled model in.
    quantize:
        Compile to the int8 execution path
        (:mod:`repro.runtime.quant`): ``"int8"``, a bit width, or a
        :class:`~repro.runtime.quant.QuantizationConfig`. Implies
        ``compile=True``. Activation scales calibrate on
        ``calibration`` when given, else on the leading images of ``x``
        itself (fine for one-shot calls; serving loops should
        ``compile_model(quantize=...)`` once with a held-out batch).
    calibration:
        Optional ``(N, C, H, W)`` batch for ``quantize`` calibration.
    tune:
        Compile with per-layer schedule tuning (``"cost"`` for the
        analytic model, ``"measure"`` for measured schedules persisted
        in the :class:`~repro.runtime.tune.TuningCache`). Implies
        ``compile=True``; the input geometry is taken from ``x``. A
        tuned micro-batch chunk size (measure mode) applies when neither
        ``micro_batch`` nor ``workers`` pins the chunking.
    tuning_cache:
        Explicit :class:`~repro.runtime.tune.TuningCache` for ``tune``
        (defaults to the persisted process-wide one).
    stats:
        Optional :class:`PredictStats` filled in with timings.

    Returns
    -------
    Stacked model outputs ``(N, ...)`` as a numpy array.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) inputs, got shape {x.shape}")
    if micro_batch is not None and micro_batch < 1:
        raise ValueError("micro_batch must be >= 1")
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if quantize is not None and isinstance(model, CompiledModel):
        # An already-lowered model cannot be re-quantized here; serving
        # float while the caller believes they measured int8 would be
        # worse than failing.
        if model.quantization is None:
            raise ValueError(
                "quantize= has no effect on an already-compiled model; "
                "pass the eager model, or compile_model(quantize=...) yourself"
            )
    if tune is not None and isinstance(model, CompiledModel) and model.tuning is None:
        # Same contract for tuning: an untuned compiled model cannot be
        # re-scheduled here.
        raise ValueError(
            "tune= has no effect on an already-compiled model; "
            "pass the eager model, or compile_model(tune=...) yourself"
        )
    compile = compile or quantize is not None or tune is not None
    want_compiled = compile or isinstance(model, CompiledModel)
    process_pool = executor is not None and getattr(executor, "is_process_pool", False)
    if process_pool:
        if backend is not None:
            raise ValueError(
                "backend= cannot be combined with a process-pool executor "
                "(workers run the pipeline exactly as compiled)"
            )
        if not isinstance(model, CompiledModel) or model is not executor.compiled:
            raise ValueError(
                "a process-pool executor serves the compiled model it was "
                "built from; pass that CompiledModel as model="
            )
        if workers is None:
            # Split by the parallelism the machine actually has, not the
            # pool width: on a 1-core host, chunking a flush across every
            # worker only multiplies ring round-trips and shrinks the
            # per-chunk batch with no concurrency to gain — one full
            # chunk to one (least-loaded) worker is strictly cheaper.
            from .tune import effective_cpu_count

            workers = max(1, min(executor.procs, effective_cpu_count()))
    if x.shape[0] == 0:
        # A batcher flush or a drained queue legitimately produces N=0:
        # answer with a correctly-shaped (0, ...) output. A compiled
        # model knows (or can derive) its output geometry from metadata
        # — no forward pass, so a worker pool is never spun up for an
        # empty flush; otherwise fall back to a one-image probe,
        # memoized per model and geometry (checked before the compile
        # step so repeated empty calls never lower the model).
        entry = (
            model.output_geometry(x.shape[1:], x.dtype)
            if isinstance(model, CompiledModel)
            else None
        )
        shape_tail, dtype = entry if entry is not None else _probe_output(
            model, want_compiled, x
        )
        result = np.empty((0,) + shape_tail, dtype=dtype)
        if stats is not None:
            stats.batch = 0
            stats.micro_batch = micro_batch
            stats.chunks = 0
            stats.workers = workers or 1
            stats.compiled = want_compiled
            stats.seconds = 0.0
            stats.chunk_seconds = []
        return result

    if compile and not isinstance(model, CompiledModel):
        model = compile_model(
            model,
            quantize=quantize,
            calibration=calibration if calibration is not None else x,
            tune=tune,
            input_shape=x.shape[1:],
            tuning_cache=tuning_cache,
        )
    compiled = model if isinstance(model, CompiledModel) else None

    batch = x.shape[0]
    workers = workers or 1
    if micro_batch is None and workers > 1:
        # One chunk per worker keeps every thread busy exactly once.
        micro_batch = -(-batch // workers)
    elif micro_batch is None and compiled is not None and compiled.tuning is not None:
        # A measured tuning run recorded the winning chunk size; apply
        # it when the caller pinned neither chunking nor workers.
        tuned_chunk = compiled.tuning.micro_batch
        if tuned_chunk is not None and tuned_chunk < batch:
            micro_batch = tuned_chunk
    step = batch if micro_batch is None else micro_batch
    chunks = [x[lo : lo + step] for lo in range(0, batch, step)]
    # Ragged tail chunk on the compiled path: pad it up to the uniform
    # chunk size (rows are independent in inference, so the padding rows
    # are computed and discarded). One chunk geometry means one set of
    # execution plans and arena buffers, instead of the compiled model
    # keeping a second full buffer set alive for every distinct tail
    # size a serving loop happens to produce.
    tail_rows = chunks[-1].shape[0]
    pad_tail = compiled is not None and len(chunks) > 1 and tail_rows < step
    if pad_tail:
        pad = np.zeros((step - tail_rows,) + x.shape[1:], dtype=x.dtype)
        chunks[-1] = np.concatenate([chunks[-1], pad])
    chunk_seconds = [0.0] * len(chunks)

    def run_chunk(index: int) -> np.ndarray:
        chunk_start = time.perf_counter()
        if compiled is not None:
            out = compiled(chunks[index], backend=backend)
        else:
            # Grad mode is per-thread, so each (possibly pooled) worker
            # disables recording for its own chunk.
            with nn.no_grad():
                out = model(nn.Tensor(chunks[index], dtype=None)).data
        chunk_seconds[index] = time.perf_counter() - chunk_start
        return out

    def run_all() -> List[np.ndarray]:
        if process_pool:
            # Chunks cross the process boundary as shared-memory tensor
            # records (a closure cannot); chunk timings come back from
            # the workers' own enqueue->response stamps.
            return executor.run_chunks(chunks, chunk_seconds)
        if workers > 1:
            pool = executor if executor is not None else _shared_pool(workers)
            return list(pool.map(run_chunk, range(len(chunks))))
        return [run_chunk(i) for i in range(len(chunks))]

    start = time.perf_counter()
    if compiled is not None:
        outputs = run_all()
    else:
        was_training = model.training
        model.eval()
        try:
            # This outer no_grad covers the sequential path (run_chunk
            # adds a per-thread one for pooled workers, since grad mode
            # is thread-local).
            with nn.no_grad(), conv_backend_override(model, backend):
                outputs = run_all()
        finally:
            model.train(was_training)

    if pad_tail:
        outputs[-1] = outputs[-1][:tail_rows]
    result = outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)
    if stats is not None:
        stats.batch = batch
        stats.micro_batch = micro_batch
        stats.chunks = len(outputs)
        stats.workers = workers
        stats.compiled = compiled is not None
        stats.seconds = time.perf_counter() - start
        stats.chunk_seconds = chunk_seconds
    return result
