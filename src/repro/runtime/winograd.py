"""Winograd fast-convolution transforms: F(2x2,3x3) and F(4x4,3x3).

A 3x3/stride-1 convolution over an ``m x m`` output tile can be computed
with ``(m+2)^2`` multiplies instead of ``9 m^2`` by transforming the
input tile and the kernel into a "Winograd domain", multiplying
element-wise there, and transforming back (Lavin & Gray, 2016).  Batched
over every tile and every channel, the element-wise products become a
stack of dense GEMMs with ``(m+2)^2 / (9 m^2)`` of the direct MACs:
2.25x fewer for F(2x2,3x3), 4x fewer for F(4x4,3x3).

This module owns the 1-D transform matrices, their Kronecker-squared 2-D
forms, and the eligibility/selection rules shared by the ``winograd``
compiler pass, the tune pass, and the cost model.  The execution loop
itself lives in :meth:`repro.runtime.compile.ConvOp._run_winograd`; the
``winograd`` engine backend in :mod:`repro.runtime.backends` wraps the
same transforms for the generic per-request dispatch path.

Numerics
--------
F(2x2,3x3) transforms only add/subtract (``B``/``A`` entries in
{0, +-1}) and halve (``G`` entries in {0, 1/2, 1}); on integer-valued
inputs (int8 activation codes) the forward transforms are *exact* in
float32.  F(4x4,3x3) uses the Cook-Toom points {0, +-1, +-2} whose
transform entries reach 8 and 1/24, amplifying rounding error by roughly
one decimal digit — observed max-abs error vs im2col stays ~1e-5 on
unit-scale activations, comfortably inside the repo-wide 1e-4 equivalence
budget, but F(4x4) is only auto-selected for float32/float64 compute,
never for larger tiles than the output needs.
"""
from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "WINO_TILES",
    "transforms",
    "weight_transform",
    "eligible_tiles",
    "default_tile",
    "wino_geometry",
]

# 1-D transform matrices, exact in binary floating point where possible.
_G2 = np.array(
    [[1.0, 0.0, 0.0], [0.5, 0.5, 0.5], [0.5, -0.5, 0.5], [0.0, 0.0, 1.0]]
)
_BT2 = np.array(
    [[1.0, 0.0, -1.0, 0.0],
     [0.0, 1.0, 1.0, 0.0],
     [0.0, -1.0, 1.0, 0.0],
     [0.0, 1.0, 0.0, -1.0]]
)
_AT2 = np.array([[1.0, 1.0, 1.0, 0.0], [0.0, 1.0, -1.0, -1.0]])

# F(4x4,3x3) over interpolation points {0, +-1, +-2} (Lavin & Gray).
_BT4 = np.array(
    [[4.0, 0.0, -5.0, 0.0, 1.0, 0.0],
     [0.0, -4.0, -4.0, 1.0, 1.0, 0.0],
     [0.0, 4.0, -4.0, -1.0, 1.0, 0.0],
     [0.0, -2.0, -1.0, 2.0, 1.0, 0.0],
     [0.0, 2.0, -1.0, -2.0, 1.0, 0.0],
     [0.0, 4.0, 0.0, -5.0, 0.0, 1.0]]
)
_G4 = np.array(
    [[1.0 / 4.0, 0.0, 0.0],
     [-1.0 / 6.0, -1.0 / 6.0, -1.0 / 6.0],
     [-1.0 / 6.0, 1.0 / 6.0, -1.0 / 6.0],
     [1.0 / 24.0, 1.0 / 12.0, 1.0 / 6.0],
     [1.0 / 24.0, -1.0 / 12.0, 1.0 / 6.0],
     [0.0, 0.0, 1.0]]
)
_AT4 = np.array(
    [[1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
     [0.0, 1.0, -1.0, 2.0, -2.0, 0.0],
     [0.0, 1.0, 1.0, 4.0, 4.0, 0.0],
     [0.0, 1.0, -1.0, 8.0, -8.0, 1.0]]
)

#: Supported output-tile sizes, largest (fastest on big maps) first.
WINO_TILES = (4, 2)

_1D = {2: (_G2, _BT2, _AT2), 4: (_G4, _BT4, _AT4)}

# (GG, BT, AT) Kronecker-squared 2-D transforms per (tile, dtype); the
# f64 masters are computed once, casts are cached per compute dtype.
_2D_CACHE: dict = {}


def transforms(m: int, dtype=np.float32) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """2-D transform matrices ``(GG, BT, AT)`` for tile size ``m``.

    ``GG`` is ``(f, 9)``, ``BT`` is ``(f, f)``, ``AT`` is ``(m*m, f)``
    with ``f = (m+2)**2``; all contiguous and cached per dtype.
    """
    key = (m, np.dtype(dtype))
    cached = _2D_CACHE.get(key)
    if cached is None:
        g, bt, at = _1D[m]
        cached = tuple(
            np.ascontiguousarray(np.kron(a, a).astype(dtype))
            for a in (g, bt, at)
        )
        _2D_CACHE[key] = cached
    return cached


def weight_transform(w9: np.ndarray, m: int, dtype=np.float32) -> np.ndarray:
    """Transform a ``(9, C_in, C_out)`` kernel stack into ``(f, C_in, C_out)``.

    ``w9`` rows are the im2col window order ``kh*3 + kw`` — the same
    order :meth:`ConvOp.prepare` flattens ``weight_t`` rows in — so
    ``U[f] = sum_k GG[f, k] * w9[k]``.  The product runs in float64 and
    is cast once, keeping the precomputation error far below the
    execution error.
    """
    gg = np.kron(_1D[m][0], _1D[m][0])  # float64 master
    u = np.einsum("fk,kio->fio", gg, w9.astype(np.float64))
    return np.ascontiguousarray(u.astype(dtype))


def eligible_tiles(
    *,
    kernel: Tuple[int, int],
    stride: int,
    out_hw: Tuple[int, int],
    c_in: int,
    backend: Optional[str] = None,
    use_gather: bool = False,
) -> Tuple[int, ...]:
    """Tile sizes a conv layer may legally run under, best-first.

    Legality only — profitability is the cost model's and the tune
    pass's job.  Gather-scheduled convs keep their grouped GEMM (the SPM
    pattern structure does not survive the Winograd domain), explicit
    engine-backend overrides are honoured, and a tile is only offered
    when the output is large enough that at least one full tile exists.
    """
    if tuple(kernel) != (3, 3) or stride != 1:
        return ()
    if backend or use_gather:
        return ()
    if c_in < 1 or min(out_hw) < 1:
        return ()
    return tuple(m for m in WINO_TILES if min(out_hw) + 1 >= m)


def default_tile(
    *,
    out_hw: Tuple[int, int],
    c_in: int,
    tiles: Tuple[int, ...],
) -> int:
    """Static-heuristic tile choice (0 = stay on im2col).

    Measured on the VGG-16/CIFAR ladder (1-core, OpenBLAS f32):
    F(4x4,3x3) wins 1.5-2.4x whenever the map has room for a full 4x4
    tile, F(2x2,3x3) wins ~1.3x on 2x2 maps, and neither pays off when
    the contraction is too narrow for the transform overhead (the
    c_in=3 stem layer).  ``tune="cost"`` / ``tune="measure"`` refine
    this per layer; this rule is the no-tune default.
    """
    if not tiles or c_in < 16:
        return 0
    if 4 in tiles and min(out_hw) >= 4:
        return 4
    if 2 in tiles:
        return 2
    return 0


def wino_geometry(
    *, out_hw: Tuple[int, int], m: int
) -> Tuple[int, int, int, int]:
    """Tiling of an ``(oh, ow)`` output by ``m x m`` tiles.

    Returns ``(th, tw, f, tile_span)``: tile counts per axis, Winograd-
    domain frequency count ``f = (m+2)**2``, and the input span
    ``m*t + 2`` each axis must provide (partial edge tiles read
    zero-padding past the convolution's own padding).
    """
    oh, ow = out_hw
    th = -(-oh // m)
    tw = -(-ow // m)
    return th, tw, (m + 2) ** 2, m + 2
