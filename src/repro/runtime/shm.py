"""Shared-memory primitives for multi-process serving.

Two building blocks live here, both consumed by
:mod:`repro.runtime.workerpool`:

- :class:`SharedModelImage` — a compiled model's parameters (dense
  weights, SPM grouped matrices, int8 code bundles — every ndarray the
  op list references) serialized once into a single
  :class:`multiprocessing.shared_memory.SharedMemory` slab. Workers
  :meth:`~SharedModelImage.attach` the slab and rebuild a
  :class:`~repro.runtime.compile.CompiledModel` whose arrays are
  *read-only views into the mapping* — the weights exist once in
  physical memory no matter how many workers serve them. The image
  counts how many arrays resolved as views vs. copies
  (:attr:`attach_stats`), which is what ``/stats`` surfaces to prove
  workers attach rather than copy.
- :class:`TensorRing` — a lock-free single-producer/single-consumer
  byte ring over a shared-memory slice, carrying length-prefixed
  records (struct-packed tensor headers + raw activation bytes, no
  pickling on the hot path). Head/tail are monotonic u64 counters on
  separate cache lines; a producer that dies never leaves a lock for
  the consumer to deadlock on, which is what makes worker crashes
  recoverable.

Python 3.11's ``SharedMemory`` registers *every* mapping — attached
ones included — with the ``resource_tracker``, which would unlink
segments still in use when a worker exits. :func:`attach_segment`
deregisters after attaching, so only the creating process owns cleanup.
"""

from __future__ import annotations

import io
import math
import pickle
import struct
import time
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SharedModelImage",
    "TensorRing",
    "RingTimeout",
    "attach_segment",
    "create_segment",
    "pack_tensor",
    "unpack_tensor",
    "KIND_REQUEST",
    "KIND_RESULT",
    "KIND_ERROR",
    "KIND_CONTROL",
    "KIND_STOP",
]

#: Every segment this runtime creates is named ``repro-...`` so tests
#: (and operators) can scan ``/dev/shm`` for leaks unambiguously.
SHM_PREFIX = "repro"

_IMAGE_MAGIC = 0x5250_494D  # "RPIM"
_IMAGE_HEADER = struct.Struct("<QQQQQQ")  # magic, data_off, manifest_off,
#                                           manifest_len, spec_off, spec_len
_ALIGN = 64


def _segment_name(kind: str) -> str:
    import os
    import secrets

    return f"{SHM_PREFIX}-{kind}-{os.getpid():x}-{secrets.token_hex(4)}"


def create_segment(kind: str, nbytes: int) -> shared_memory.SharedMemory:
    """Create a fresh named segment; the caller owns close+unlink."""
    return shared_memory.SharedMemory(
        name=_segment_name(kind), create=True, size=max(1, int(nbytes))
    )


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting cleanup ownership.

    Python 3.11 registers *every* mapping with the ``resource_tracker``,
    attach included. That only matters when this process runs its own
    tracker (a *spawned* worker): its tracker would unlink the segment
    when the worker exits, yanking it out from under the router. Forked
    workers and same-process attaches share the creator's tracker, where
    the duplicate registration is an idempotent no-op — and deregistering
    there would instead erase the creator's crash-cleanup backstop. So:
    unregister only when the attach itself started a fresh tracker.
    """
    tracker = resource_tracker._resource_tracker  # noqa: SLF001
    had_tracker = getattr(tracker, "_fd", None) is not None
    shm = shared_memory.SharedMemory(name=name)
    if not had_tracker:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker not running
            pass
    return shm


def destroy_segment(shm: Optional[shared_memory.SharedMemory]) -> None:
    """Close and unlink, tolerating repeats and races (idempotent)."""
    if shm is None:
        return
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - exported views alive
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _align(offset: int, alignment: int = _ALIGN) -> int:
    return (offset + alignment - 1) // alignment * alignment


# ---------------------------------------------------------------------
# Shared model image
# ---------------------------------------------------------------------
class _ArrayExtractor(pickle.Pickler):
    """Pickler that lifts every ndarray out into a shared-array table.

    The pickle stream keeps a persistent-id reference per array; the
    arrays themselves land contiguously in the image slab, deduplicated
    by object identity so a tensor referenced from two ops (e.g. a
    conv's raw weight and its GEMM operand's base) is stored once.
    """

    def __init__(self, file: io.BytesIO) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: List[np.ndarray] = []
        self._index: Dict[int, int] = {}
        self._keepalive: List[np.ndarray] = []

    def persistent_id(self, obj):  # noqa: D102 - pickle API
        if type(obj) is np.ndarray:
            index = self._index.get(id(obj))
            if index is None:
                index = len(self.arrays)
                self.arrays.append(np.ascontiguousarray(obj))
                self._index[id(obj)] = index
                self._keepalive.append(obj)
            return ("repro-shm-array", index)
        return None


class _ArrayResolver(pickle.Unpickler):
    """Unpickler resolving persistent ids to views into the image slab."""

    def __init__(self, file, arrays: Sequence[np.ndarray]) -> None:
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid):  # noqa: D102 - pickle API
        tag, index = pid
        if tag != "repro-shm-array":
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._arrays[index]


@dataclass
class AttachStats:
    """How an attached image's arrays materialised in this process."""

    arrays: int = 0
    attached: int = 0  # zero-copy views into the shared mapping
    copied: int = 0  # private copies (alignment fallback; normally 0)
    nbytes: int = 0

    def snapshot(self) -> dict:
        return {
            "arrays": self.arrays,
            "attached": self.attached,
            "copied": self.copied,
            "bytes": self.nbytes,
        }


class SharedModelImage:
    """A compiled model frozen into one shared-memory slab.

    Layout: ``header | array data (64-byte aligned) | manifest pickle |
    spec pickle``. The manifest lists ``(dtype, shape, offset)`` per
    array; the spec is the op list pickled with every ndarray replaced
    by a persistent reference into the manifest. :meth:`export` builds
    the slab from a live :class:`CompiledModel`; :meth:`attach` +
    :meth:`model` rebuild an equivalent model whose parameters are
    read-only views into the mapping.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        *,
        owner: bool,
        stats: Optional[AttachStats] = None,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self.attach_stats = stats if stats is not None else AttachStats()

    @property
    def name(self) -> str:
        """Segment name workers pass to :meth:`attach`."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total slab size: header + arrays + manifest + spec."""
        return self._shm.size

    def memory_report(self) -> dict:
        """Byte breakdown for the fleet ledger: the mapped slab size,
        the array payload inside it, and framing overhead. One slab is
        shared by every worker process, so a tenant is charged it once
        regardless of pool width."""
        payload = self.attach_stats.nbytes
        return {
            "slab": self.nbytes,
            "payload": payload,
            "overhead": max(0, self.nbytes - payload),
            "arrays": self.attach_stats.arrays,
        }

    # -- construction --------------------------------------------------
    @classmethod
    def export(cls, compiled) -> "SharedModelImage":
        """Serialize ``compiled``'s op list into a fresh shared slab."""
        from .compile import CompiledModel

        if not isinstance(compiled, CompiledModel):
            raise TypeError(f"expected a CompiledModel, got {type(compiled).__name__}")
        spec_buf = io.BytesIO()
        extractor = _ArrayExtractor(spec_buf)
        spec = {
            "ops": compiled.ops,
            "dtype": compiled.dtype.name if compiled.dtype is not None else None,
            "source": compiled.source,
        }
        try:
            extractor.dump(spec)
        except Exception as error:
            raise ValueError(
                f"compiled model {compiled.source!r} cannot be shared across "
                f"processes (op state failed to serialize: {error})"
            ) from error
        spec_bytes = spec_buf.getvalue()

        manifest = []
        offset = _align(_IMAGE_HEADER.size)
        for array in extractor.arrays:
            offset = _align(offset)
            manifest.append((array.dtype.str, array.shape, offset))
            offset += array.nbytes
        manifest_bytes = pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
        manifest_off = _align(offset)
        spec_off = manifest_off + len(manifest_bytes)
        total = spec_off + len(spec_bytes)

        shm = create_segment("image", total)
        try:
            _IMAGE_HEADER.pack_into(
                shm.buf,
                0,
                _IMAGE_MAGIC,
                _align(_IMAGE_HEADER.size),
                manifest_off,
                len(manifest_bytes),
                spec_off,
                len(spec_bytes),
            )
            for array, (_, _, off) in zip(extractor.arrays, manifest):
                dest = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf[off:])
                dest[...] = array
            shm.buf[manifest_off : manifest_off + len(manifest_bytes)] = manifest_bytes
            shm.buf[spec_off : spec_off + len(spec_bytes)] = spec_bytes
        except BaseException:
            destroy_segment(shm)
            raise
        stats = AttachStats(
            arrays=len(manifest),
            nbytes=sum(a.nbytes for a in extractor.arrays),
        )
        return cls(shm, owner=True, stats=stats)

    @classmethod
    def attach(cls, name: str) -> "SharedModelImage":
        """Map an exported image created by another process, read-only."""
        shm = attach_segment(name)
        magic = _IMAGE_HEADER.unpack_from(shm.buf, 0)[0]
        if magic != _IMAGE_MAGIC:
            shm.close()
            raise ValueError(f"segment {name!r} is not a repro model image")
        return cls(shm, owner=False)

    # -- materialisation -----------------------------------------------
    def _read_parts(self) -> Tuple[list, bytes]:
        (_, _, manifest_off, manifest_len, spec_off, spec_len) = _IMAGE_HEADER.unpack_from(
            self._shm.buf, 0
        )
        manifest = pickle.loads(
            bytes(self._shm.buf[manifest_off : manifest_off + manifest_len])
        )
        spec_bytes = bytes(self._shm.buf[spec_off : spec_off + spec_len])
        return manifest, spec_bytes

    def arrays(self) -> List[np.ndarray]:
        """Read-only array views into the mapping, manifest order."""
        manifest, _ = self._read_parts()
        stats = self.attach_stats
        stats.arrays = len(manifest)
        stats.attached = 0
        stats.copied = 0
        stats.nbytes = 0
        views = []
        for dtype_str, shape, off in manifest:
            view = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=self._shm.buf[off:])
            view.flags.writeable = False
            stats.attached += 1
            stats.nbytes += view.nbytes
            views.append(view)
        return views

    def model(self):
        """Rebuild a :class:`CompiledModel` over the shared arrays.

        Every parameter tensor in the result is a read-only view into
        the shared mapping — verify with :attr:`attach_stats` (``copied``
        stays 0). Per-process execution state (arenas, plan cache) is
        created fresh and private, so halo writes never false-share.
        """
        from .compile import CompiledModel

        views = self.arrays()
        _, spec_bytes = self._read_parts()
        spec = _ArrayResolver(io.BytesIO(spec_bytes), views).load()
        return CompiledModel(spec["ops"], dtype=spec["dtype"], source=spec["source"])

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (arrays from it become invalid)."""
        try:
            self._shm.close()
        except (OSError, BufferError):  # views still alive; mapping leaks
            pass  # until process exit, but the segment itself is unlinked

    def unlink(self) -> None:
        """Remove the segment (owner only); safe to repeat."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        return (
            f"SharedModelImage(name={self.name!r}, nbytes={self.nbytes}, "
            f"owner={self._owner})"
        )


# ---------------------------------------------------------------------
# SPSC tensor rings
# ---------------------------------------------------------------------
class RingTimeout(TimeoutError):
    """A ring write (full) or read (empty) exceeded its deadline."""


#: Record kinds. Requests/results carry a tensor header + raw bytes;
#: control/error records carry small pickled payloads (cold path only).
KIND_REQUEST = 1
KIND_RESULT = 2
KIND_ERROR = 3
KIND_CONTROL = 4
KIND_STOP = 5

_REC_HEADER = struct.Struct("<II")  # payload length, kind
_WRAP_MARKER = 0xFFFFFFFF

#: req id, enqueue stamp, done stamp, ndim, dtype (8s), dims (6 x u32)
_TENSOR_HEADER = struct.Struct("<QddI8s6I")


def pack_tensor(
    req_id: int, t_start: float, t_done: float, array: np.ndarray
) -> Tuple[bytes, memoryview]:
    """Tensor record payload: packed header + the raw C-order bytes."""
    array = np.ascontiguousarray(array)
    if array.ndim > 6:
        raise ValueError(f"tensor rank {array.ndim} exceeds ring header capacity")
    dims = tuple(array.shape) + (0,) * (6 - array.ndim)
    header = _TENSOR_HEADER.pack(
        req_id, t_start, t_done, array.ndim, array.dtype.str.encode(), *dims
    )
    return header, memoryview(array).cast("B")


def unpack_tensor(payload: memoryview) -> Tuple[int, float, float, np.ndarray]:
    """Inverse of :func:`pack_tensor`; the array is a view into ``payload``."""
    req_id, t_start, t_done, ndim, dtype_bytes, *dims = _TENSOR_HEADER.unpack_from(
        payload, 0
    )
    dtype = np.dtype(dtype_bytes.rstrip(b"\x00").decode())
    shape = tuple(dims[:ndim])
    array = np.frombuffer(
        payload, dtype=dtype, count=math.prod(shape),
        offset=_TENSOR_HEADER.size,
    ).reshape(shape)
    return req_id, t_start, t_done, array


class TensorRing:
    """Lock-free SPSC byte ring over a shared-memory slice.

    One writer process, one reader process. ``head``/``tail`` are
    monotonically increasing u64 byte counters (never wrapped), each on
    its own cache line so the two sides never false-share; the data
    region is ``capacity`` bytes, a multiple of 8. Records are
    ``[u32 length | u32 kind | payload]`` rounded up to 8 bytes; a
    ``0xFFFFFFFF`` length is a wrap marker telling the reader to skip to
    the ring start. Progress needs no locks, so a peer dying at any
    point leaves the survivor free to time out and inspect liveness.
    """

    CONTROL_BYTES = 128  # head line + tail line

    def __init__(self, buf, offset: int, capacity: int) -> None:
        if capacity % 8 != 0 or capacity < 64:
            raise ValueError("ring capacity must be a multiple of 8, >= 64")
        self._buf = buf
        self._head_off = offset
        self._tail_off = offset + 64
        self._data_off = offset + self.CONTROL_BYTES
        self.capacity = capacity

    @classmethod
    def footprint(cls, capacity: int) -> int:
        """Slab bytes one ring of ``capacity`` data bytes occupies."""
        return cls.CONTROL_BYTES + capacity

    # -- counters ------------------------------------------------------
    @property
    def head(self) -> int:
        """Producer cursor: total bytes ever written (never wraps)."""
        return struct.unpack_from("<Q", self._buf, self._head_off)[0]

    @head.setter
    def head(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, self._head_off, value)

    @property
    def tail(self) -> int:
        """Consumer cursor: total bytes ever consumed (never wraps)."""
        return struct.unpack_from("<Q", self._buf, self._tail_off)[0]

    @tail.setter
    def tail(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, self._tail_off, value)

    @property
    def used_bytes(self) -> int:
        """Bytes currently enqueued (occupancy, for /stats)."""
        return max(0, self.head - self.tail)

    def has_data(self) -> bool:
        """Whether at least one unconsumed record (or marker) exists."""
        return self.head != self.tail

    # -- producer side -------------------------------------------------
    def write(
        self,
        kind: int,
        parts: Sequence,
        *,
        timeout: Optional[float] = None,
        should_abort=None,
    ) -> None:
        """Append one record; blocks (polling) while the ring is full.

        ``parts`` is a sequence of bytes-like payload pieces, written
        back-to-back. Raises :class:`RingTimeout` on deadline, or
        ``should_abort``'s exception if the liveness callback raises
        (e.g. the consumer process died).
        """
        payload_len = sum(len(memoryview(p).cast("B")) for p in parts)
        record = _align(_REC_HEADER.size + payload_len, 8)
        if record + 8 > self.capacity:
            raise ValueError(
                f"record of {record} bytes exceeds ring capacity "
                f"{self.capacity} (resize the ring)"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while True:
            head = self.head
            tail = self.tail
            free = self.capacity - (head - tail)
            pos = head % self.capacity
            contiguous = self.capacity - pos
            if contiguous < record:
                # Not enough room before the edge: burn the remainder
                # with a wrap marker and restart from offset 0.
                if free >= contiguous + record:
                    struct.pack_into(
                        "<I", self._buf, self._data_off + pos, _WRAP_MARKER
                    )
                    self.head = head + contiguous
                    continue
            elif free >= record:
                base = self._data_off + pos
                _REC_HEADER.pack_into(self._buf, base, payload_len, kind)
                cursor = base + _REC_HEADER.size
                for part in parts:
                    view = memoryview(part).cast("B")
                    self._buf[cursor : cursor + len(view)] = view
                    cursor += len(view)
                self.head = head + record
                return
            spins = _backoff(spins)
            if should_abort is not None:
                should_abort()
            if deadline is not None and time.monotonic() > deadline:
                raise RingTimeout(
                    f"ring full for {timeout:.3f}s "
                    f"({self.used_bytes}/{self.capacity} bytes queued)"
                )

    # -- consumer side -------------------------------------------------
    def try_read(self) -> Optional[Tuple[int, memoryview, int]]:
        """Non-blocking: ``(kind, payload view, record bytes)`` or None.

        The payload is a view into the ring — fully consume (or copy) it
        before calling :meth:`consume`, which frees the slot for reuse.
        """
        while True:
            head = self.head
            tail = self.tail
            if head == tail:
                return None
            pos = tail % self.capacity
            length = struct.unpack_from("<I", self._buf, self._data_off + pos)[0]
            if length == _WRAP_MARKER:
                self.tail = tail + (self.capacity - pos)
                continue
            kind = struct.unpack_from("<I", self._buf, self._data_off + pos + 4)[0]
            base = self._data_off + pos + _REC_HEADER.size
            payload = memoryview(self._buf)[base : base + length]
            return kind, payload, _align(_REC_HEADER.size + length, 8)

    def read(
        self, *, timeout: Optional[float] = None, should_abort=None
    ) -> Tuple[int, memoryview, int]:
        """Blocking :meth:`try_read`; raises :class:`RingTimeout`."""
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while True:
            item = self.try_read()
            if item is not None:
                return item
            spins = _backoff(spins)
            if should_abort is not None:
                should_abort()
            if deadline is not None and time.monotonic() > deadline:
                raise RingTimeout(f"ring empty for {timeout:.3f}s")

    def consume(self, record_bytes: int) -> None:
        """Release one record returned by :meth:`try_read`/:meth:`read`."""
        self.tail = self.tail + record_bytes


def _backoff(spins: int) -> int:
    """Poll pacing: yield the core first, then sleep in small steps.

    The yield phase (``sleep(0)``) matters on single-core machines,
    where the peer only runs when we give up the core; the capped sleep
    keeps an idle ring from burning CPU against the compute it waits on.
    """
    if spins < 100:
        time.sleep(0)
    elif spins < 200:
        time.sleep(50e-6)
    else:
        time.sleep(500e-6)
    return spins + 1
