"""Graph IR for the compiled inference pipeline.

:func:`repro.runtime.compile_model` no longer lowers a model straight to
a flat op list — it builds a :class:`Graph` of inference ops with
explicit producer/consumer links and per-edge tensor metadata
(:class:`TensorMeta`), and a
:class:`~repro.runtime.passes.PassManager` transforms that graph through
named, independently-testable passes (BN folding, epilogue fusion,
quantization, tuning, halo linking, arena assignment).

The IR is deliberately small:

- A :class:`Node` wraps one executable op (an
  ``repro.runtime.compile._InferenceOp``) plus the metadata of the
  tensor it *produces* (``out_meta``). Ops stay the unit of execution;
  the graph is the unit of transformation.
- Pipelines are chains — each node consumes its predecessor's output —
  with nested subgraphs for branching structures (a residual block's
  node carries ``body``/``shortcut`` subgraphs, both consuming the
  node's input edge).
- Ops declare their layout contract through two class attributes,
  ``layout_in`` (``"nchw"``/``"nhwc"``/``"flat"``/``"any"``) and
  ``layout_out`` (a concrete layout or ``"same"``), which is what
  :meth:`Graph.verify` checks edge-by-edge.

:meth:`Graph.verify` raises :class:`GraphError` on structural damage —
broken producer/consumer links, duplicate arena tags, an op whose
declared input layout does not match its incoming edge — and the pass
manager runs it after every pass, so a buggy pass fails at compile time
instead of producing silently-wrong activations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

__all__ = ["GraphError", "TensorMeta", "Node", "Graph"]

#: Recognised activation layouts flowing along graph edges.
LAYOUTS = ("nchw", "nhwc", "flat")


class GraphError(ValueError):
    """A structural invariant of the compile graph is violated."""


@dataclass(frozen=True)
class TensorMeta:
    """Metadata of one graph edge (the tensor a node produces).

    ``layout`` is the activation memory layout; ``domain`` distinguishes
    float activations from int8 *codes* on the quantized pipeline
    (scales live on the ops, the domain only names the number space).
    Shapes are deliberately absent: compiled pipelines are
    batch/spatial-size agnostic and learn concrete shapes at run time
    through the plan cache.
    """

    layout: str
    domain: str = "float"

    def __post_init__(self) -> None:
        if self.layout not in LAYOUTS:
            raise GraphError(f"unknown layout {self.layout!r}; expected {LAYOUTS}")
        if self.domain not in ("float", "codes"):
            raise GraphError(f"unknown domain {self.domain!r}")


def _layout_in(op) -> str:
    return getattr(op, "layout_in", "any")


def _layout_out(op) -> str:
    return getattr(op, "layout_out", "same")


def _domain_out(op) -> str:
    return getattr(op, "domain_out", "same")


def propagate_meta(op, in_meta: TensorMeta) -> TensorMeta:
    """Derive a node's output metadata from its op and input edge."""
    layout = _layout_out(op)
    if layout == "same":
        layout = in_meta.layout
    domain = _domain_out(op)
    if domain == "same":
        domain = in_meta.domain
    return TensorMeta(layout=layout, domain=domain)


class Node:
    """One op in the graph plus its explicit producer/consumer links."""

    __slots__ = ("op", "out_meta", "inputs", "consumers", "subgraphs")

    def __init__(self, op, out_meta: TensorMeta) -> None:
        self.op = op
        self.out_meta = out_meta
        self.inputs: List["Node"] = []
        self.consumers: List["Node"] = []
        #: Nested pipelines (e.g. ``{"body": ..., "shortcut": ...}`` on a
        #: residual node); both consume this node's *input* edge.
        self.subgraphs: Dict[str, "Graph"] = {}

    @property
    def tag(self) -> str:
        """The op's arena tag (empty for ops that take no workspace)."""
        return getattr(self.op, "tag", "")

    def in_meta(self, graph: "Graph") -> TensorMeta:
        """Metadata of the edge this node consumes."""
        if self.inputs:
            return self.inputs[0].out_meta
        return graph.entry_meta

    def __repr__(self) -> str:
        return f"Node({type(self.op).__name__}, out={self.out_meta.layout})"


class Graph:
    """A chain of :class:`Node` with explicit links and edge metadata.

    Mutators (:meth:`append`, :meth:`insert_after`, :meth:`remove`,
    :meth:`replace_op`, :meth:`rebuild`) keep producer/consumer links
    consistent and invalidate the cached linearisation, so passes can
    splice nodes freely and executors read a stable
    :meth:`op_list` afterwards.
    """

    def __init__(self, entry_meta: TensorMeta, name: str = "") -> None:
        self.entry_meta = entry_meta
        self.name = name
        self.nodes: List[Node] = []
        self._op_list: Optional[List[object]] = None

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    @property
    def out_meta(self) -> TensorMeta:
        """Metadata of the graph's exit edge (entry edge when empty)."""
        return self.nodes[-1].out_meta if self.nodes else self.entry_meta

    def op_list(self) -> List[object]:
        """The executable ops in chain order (cached until mutation)."""
        if self._op_list is None:
            self._op_list = [node.op for node in self.nodes]
        return self._op_list

    def find(self, predicate: Callable[[Node], bool]) -> List[Node]:
        """All nodes (this graph only) matching ``predicate``."""
        return [node for node in self.nodes if predicate(node)]

    def walk(self) -> Iterator[Node]:
        """Every node, recursing into subgraphs depth-first."""
        for node in self.nodes:
            yield node
            for sub in node.subgraphs.values():
                yield from sub.walk()

    # -- mutation ------------------------------------------------------
    def _dirty(self) -> None:
        self._op_list = None

    def _relink(self) -> None:
        """Recompute the chain's producer/consumer links in place."""
        for i, node in enumerate(self.nodes):
            node.inputs = [self.nodes[i - 1]] if i > 0 else []
            node.consumers = [self.nodes[i + 1]] if i + 1 < len(self.nodes) else []
        self._dirty()

    def append(self, op, out_meta: Optional[TensorMeta] = None) -> Node:
        """Add ``op`` at the end of the chain; metadata is propagated
        from the current exit edge when not given explicitly."""
        meta = out_meta or propagate_meta(op, self.out_meta)
        node = Node(op, meta)
        self.nodes.append(node)
        self._relink()
        return node

    def insert_after(self, node: Node, op, out_meta: Optional[TensorMeta] = None) -> Node:
        """Splice ``op`` into the chain right after ``node``."""
        index = self.nodes.index(node)
        meta = out_meta or propagate_meta(op, node.out_meta)
        new = Node(op, meta)
        self.nodes.insert(index + 1, new)
        self._relink()
        return new

    def remove(self, node: Node) -> None:
        """Remove ``node``, splicing its producer to its consumers."""
        self.nodes.remove(node)
        self._relink()

    def replace_op(self, node: Node, op, out_meta: Optional[TensorMeta] = None) -> Node:
        """Swap the executable op on ``node`` (links are preserved)."""
        node.op = op
        node.out_meta = out_meta or propagate_meta(op, node.in_meta(self))
        self._dirty()
        return node

    def rebuild(self, ops: Sequence[object]) -> None:
        """Replace the whole chain with ``ops``, re-deriving metadata.

        Used by list-level rewrites (the quantization pass transforms the
        op sequence wholesale); per-edge metadata is re-propagated from
        the entry edge through each op's layout/domain contract.
        """
        self.nodes = []
        meta = self.entry_meta
        for op in ops:
            meta = propagate_meta(op, meta)
            node = Node(op, meta)
            # Preserve nested pipelines exposed by the op itself.
            for key in ("body", "shortcut"):
                sub = getattr(op, f"{key}_graph", None)
                if sub is not None:
                    node.subgraphs[key] = sub
            self.nodes.append(node)
        self._relink()

    # -- verification --------------------------------------------------
    def verify(self) -> "Graph":
        """Check structural invariants; raises :class:`GraphError`.

        Checked per graph (recursing into subgraphs):

        - chain links: ``node.inputs``/``node.consumers`` must mirror
          the chain order exactly;
        - layout compatibility: each op's declared ``layout_in`` must
          match its incoming edge (``"any"`` accepts everything, but a
          spatial layout never follows a flattened edge);
        - declared output layout must match the edge metadata;
        - arena tags must be unique across the whole graph (duplicate
          tags would silently alias scratch buffers between ops).
        """
        self._verify_chain()
        tags: Dict[str, str] = {}
        for node in self.walk():
            tag = node.tag
            if not tag:
                continue
            kind = type(node.op).__name__
            if tag in tags:
                raise GraphError(
                    f"duplicate arena tag {tag!r} on {kind} and {tags[tag]} "
                    "(ops would alias scratch buffers)"
                )
            tags[tag] = kind
        return self

    def _verify_chain(self) -> None:
        for i, node in enumerate(self.nodes):
            expected_inputs = [self.nodes[i - 1]] if i > 0 else []
            if node.inputs != expected_inputs:
                raise GraphError(
                    f"node {i} ({type(node.op).__name__}) has broken "
                    f"producer links"
                )
            expected_consumers = (
                [self.nodes[i + 1]] if i + 1 < len(self.nodes) else []
            )
            if node.consumers != expected_consumers:
                raise GraphError(
                    f"node {i} ({type(node.op).__name__}) has broken "
                    f"consumer links"
                )
            in_meta = node.in_meta(self)
            want = _layout_in(node.op)
            if want != "any" and want != in_meta.layout:
                raise GraphError(
                    f"node {i} ({type(node.op).__name__}) expects "
                    f"{want!r} input but its producer edge is "
                    f"{in_meta.layout!r}"
                )
            if want == "any" and in_meta.layout == "flat":
                spatial = getattr(node.op, "spatial_only", False)
                if spatial:
                    raise GraphError(
                        f"node {i} ({type(node.op).__name__}) is spatial "
                        "but follows a flattened edge"
                    )
            declared = _layout_out(node.op)
            expect_out = in_meta.layout if declared == "same" else declared
            if node.out_meta.layout != expect_out:
                raise GraphError(
                    f"node {i} ({type(node.op).__name__}) declares "
                    f"{expect_out!r} output but the edge says "
                    f"{node.out_meta.layout!r}"
                )
            for key, sub in node.subgraphs.items():
                try:
                    sub.verify()
                except GraphError as error:
                    raise GraphError(f"subgraph {key!r} of node {i}: {error}") from None

    def describe(self) -> str:
        """One line per node: op description plus the edge it produces."""
        lines = [f"graph({self.name or 'pipeline'}, entry={self.entry_meta.layout})"]
        for i, node in enumerate(self.nodes):
            meta = node.out_meta
            domain = "" if meta.domain == "float" else f" [{meta.domain}]"
            lines.append(f"  {i}: {node.op.describe()} -> {meta.layout}{domain}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Graph(nodes={len(self.nodes)}, entry={self.entry_meta.layout!r})"
