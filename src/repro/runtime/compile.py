"""Graph lowering: compile a module tree into a flat inference pipeline.

:func:`compile_model` performs the autograd→inference split real serving
runtimes make. It walks a model's module tree once and lowers it to a
flat list of inference ops over raw numpy arrays:

- **BN folding** — every eval-mode ``BatchNorm2d`` collapses into the
  preceding conv's weights and bias (``w' = w * scale``,
  ``b' = shift + b * scale`` with the per-channel affine map from
  :meth:`~repro.nn.layers.BatchNorm2d.fold_params`), including convs that
  carry an SPM encoding: scaling a kernel's non-zero sequence never moves
  its pattern, so the encoding stays valid with scaled values.
- **Fused epilogues** — bias add and a following ``ReLU`` run in place on
  the conv's GEMM output (:class:`~repro.runtime.backends.Epilogue`)
  while the tile is cache-hot, instead of as separate full-tensor passes.
- **One-time float32 cast** — parameters are cast once at compile time
  (``dtype=None`` keeps the training precision), halving memory traffic
  on every GEMM.
- **Channels-last layout** — activations flow NHWC between ops. The conv
  GEMM's ``(N·OH·OW, C_out)`` output *is* the next layer's channels-last
  activation, im2col unfolds as contiguous block copies
  (:func:`~repro.nn.functional.im2col_nhwc`), and pooling reduces with
  the contiguous channel axis innermost — eliminating the strided-view
  traffic that dominates the NCHW eager path. Input is converted once at
  entry; outputs convert back only if they leave the pipeline spatial.
- **Workspace arenas** — each op draws its scratch buffers (padded
  inputs, im2col columns, GEMM outputs, pooling outputs) from a
  per-thread :class:`~repro.runtime.arena.Arena`, so the steady-state
  loop does zero large allocations; activations are updated in place
  where legal (epilogues, the residual add).

Residual topologies lower through two small model-side hooks instead of
tracing: ``lowering_sequence()`` (an ordered list of submodules — VGG16,
ResNet18, PatternNet) and ``lowering_branches()``
(``(body, shortcut[, post_relu])`` — BasicBlock). Anything the lowerer
does not recognise falls back to a
:class:`ModuleOp` that runs the original module under ``no_grad`` (with
layout conversions inserted around it), so ``compile_model`` is total:
unknown models still compile, they just skip the fused fast path for
those ops.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from itertools import count
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn.functional import conv_output_size, im2col_nhwc, pool_windows_nhwc
from .arena import Arena
from .backends import Epilogue
from .engine import dispatch
from .plan import ExecutionPlan, PlanCache

__all__ = ["compile_model", "CompiledModel", "fold_batchnorm"]

# Per-conv workspace budget (bytes) for the compiled executor's im2col
# slabs. Byte-based rather than element-based so the float32 pipeline
# gets twice the rows of a float64 one for the same memory footprint;
# larger monolithic slabs measurably beat many small GEMMs until the
# workspace falls out of cache.
SLAB_BYTES = 64 * 2**20

# SPM lowering policy: the grouped-contraction gather reads |P|*n columns
# per input channel where the dense GEMM reads k^2. The compiled pipeline
# exists to serve fast, so it takes the gather only when that is the
# *narrower* contraction (|P|*n <= k^2 — e.g. the paper's n=1/|P|=4
# setting) and otherwise decodes once at compile time and runs the dense
# GEMM. (The eager `pattern` backend keeps its wider
# GROUPED_EXPANSION_LIMIT because its job is demonstrating SPM-regular
# execution, not minimum latency.)
GATHER_WIDTH_LIMIT = 1.0


# ---------------------------------------------------------------------
# Folding helpers
# ---------------------------------------------------------------------
def fold_batchnorm(
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    bn: "nn.BatchNorm2d",
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an eval-mode BN into the preceding conv's weight and bias.

    Returns ``(weight', bias')`` with
    ``conv(x, w') + b' == BN(conv(x, w) + b)`` for the BN's current
    running statistics.
    """
    scale, shift = bn.fold_params()
    folded_weight = weight * scale[:, None, None, None]
    folded_bias = shift if bias is None else shift + bias * scale
    return folded_weight, folded_bias


def _fold_encoded(encoded, scale: np.ndarray, dtype):
    """Scale an SPM-encoded layer's values per output filter.

    Kernels are stored in ``(filter, channel)`` row-major order, so
    kernel ``k`` belongs to filter ``k // C_in``; scaling the non-zero
    sequences leaves codes and codebook untouched.
    """
    from ..core.spm import EncodedLayer

    c_out, c_in, kh, kw = encoded.shape
    filters = np.arange(encoded.num_kernels) // c_in
    values = encoded.values * scale[filters][:, None]
    if dtype is not None:
        values = values.astype(dtype, copy=False)
    return EncodedLayer(
        codes=encoded.codes,
        values=values,
        codebook=encoded.codebook,
        shape=encoded.shape,
    )


def _cast_encoded(encoded, dtype):
    """Re-wrap an encoding with values cast to the compile dtype."""
    from ..core.spm import EncodedLayer

    if dtype is None or encoded.values.dtype == np.dtype(dtype):
        return encoded
    return EncodedLayer(
        codes=encoded.codes,
        values=encoded.values.astype(dtype),
        codebook=encoded.codebook,
        shape=encoded.shape,
    )


# ---------------------------------------------------------------------
# Execution state + ops
# ---------------------------------------------------------------------
@dataclass
class _ExecState:
    """Per-thread execution resources (arena is not thread-safe)."""

    arena: Arena
    plans: PlanCache


class _InferenceOp:
    """One step of the compiled pipeline: ndarray in, ndarray out."""

    tag: str = ""

    def run(
        self, x: np.ndarray, state: _ExecState, backend: Optional[str]
    ) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class ToNHWC(_InferenceOp):
    """NCHW → channels-last, copied once into a reused buffer."""

    tag: str

    def run(self, x, state, backend):
        n, c, h, w = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, h, w, c), x.dtype)
        out[...] = x.transpose(0, 2, 3, 1)
        return out

    def describe(self) -> str:
        return "to-nhwc"


@dataclass
class ToNCHW(_InferenceOp):
    """Channels-last → NCHW, for fallbacks and the public output."""

    tag: str

    def run(self, x, state, backend):
        n, h, w, c = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, c, h, w), x.dtype)
        out[...] = x.transpose(0, 3, 1, 2)
        return out

    def describe(self) -> str:
        return "to-nchw"


@dataclass
class ConvOp(_InferenceOp):
    """Channels-last convolution with folded BN and a fused epilogue.

    ``weight_t`` is the NHWC GEMM operand ``(KH*KW*C_in, C_out)`` built
    once at compile time — with the bias appended as an extra row when
    the layer has one, so the bias add rides inside the GEMM against an
    all-ones column of the (bias-augmented) column buffer instead of as
    a separate pass over the output. SPM-encoded layers keep their
    encoding and run the grouped-contraction gather natively on NHWC
    columns when that is the narrower contraction
    (``GATHER_WIDTH_LIMIT``), decoding once at compile time into a dense
    GEMM otherwise. A forced ``backend=`` routes through
    :func:`repro.runtime.dispatch` with layout conversions on both sides
    — correct for any registered backend, just slower.

    ``halo`` (set by the lowering's :func:`_link_halo` pass) names the
    direct consumer's padded input buffer: the monolithic dense path
    then writes its activation straight into that buffer's interior, so
    the consumer skips its pad copy entirely.
    """

    weight_t: Optional[np.ndarray]
    bias_rows: int  # 1 when the bias is folded into weight_t, else 0
    encoded: Optional[object]
    use_gather: bool
    epilogue: Epilogue  # bias+relu, used by the gather/engine paths
    relu: bool
    stride: int
    padding: int
    backend: Optional[str]
    kernel: Tuple[int, int]
    c_in: int
    c_out: int
    tag: str
    halo: Optional[Tuple[str, int]] = None  # (consumer tag, consumer padding)
    _weight_nchw: Optional[np.ndarray] = field(default=None, repr=False)
    _decoded_t: Optional[np.ndarray] = field(default=None, repr=False)

    def run(self, x, state, backend):
        override = backend or self.backend
        if override is not None:
            return self._run_via_engine(x, state, override)
        if self.use_gather:
            return self._run_gather(x, state)
        return self._run_dense(x, state)

    # -- shared geometry ----------------------------------------------
    def _plan(self, x: np.ndarray, state: _ExecState) -> ExecutionPlan:
        n, h, w, c = x.shape
        kh, kw = self.kernel
        key = ("nhwc", (n, h, w, c), (self.c_out, c, kh, kw), self.stride, self.padding)
        return state.plans.get_or_build(
            key,
            lambda: ExecutionPlan.build(
                key, (n, c, h, w), (self.c_out, c, kh, kw), self.stride, self.padding
            ),
        )

    def _slab_rows(self, plan: ExecutionPlan, per_row: int, itemsize: int) -> int:
        oh, _ = plan.out_hw
        budget = SLAB_BYTES // max(1, itemsize)
        return max(1, min(oh, budget // max(1, per_row)))

    def _padded_input(self, x: np.ndarray, arena: Arena) -> np.ndarray:
        """Zero-padded input, skipping the copy when the producer already
        wrote into this op's pad buffer interior (halo fusion)."""
        if self.padding <= 0:
            return x
        n, h, w, c = x.shape
        p = self.padding
        buffer = arena.take_filled(
            f"{self.tag}:pad", (n, h + 2 * p, w + 2 * p, c), x.dtype, 0.0
        )
        if x.base is buffer:
            return buffer
        buffer[:, p : p + h, p : p + w, :] = x
        return buffer

    def _store(self, out4: np.ndarray, arena: Arena) -> np.ndarray:
        """Activation hand-off: relu (+copy into the consumer's halo)."""
        if self.halo is not None:
            consumer_tag, p = self.halo
            n, oh, ow, c = out4.shape
            buffer = arena.take_filled(
                f"{consumer_tag}:pad", (n, oh + 2 * p, ow + 2 * p, c), out4.dtype, 0.0
            )
            interior = buffer[:, p : p + oh, p : p + ow, :]
            if self.relu:
                np.maximum(out4, 0.0, out=interior)
            else:
                np.copyto(interior, out4)
            return interior
        if self.relu:
            np.maximum(out4, 0.0, out=out4)
        return out4

    # -- dense GEMM path ----------------------------------------------
    def _run_dense(self, x, state):
        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        oh, ow = plan.out_hw
        k = kh * kw * self.c_in
        if self.weight_t is not None:
            weight_t = self.weight_t
        else:
            # Diverse-codebook SPM conv lowered to decode + dense GEMM.
            weight_t = self._decoded_weight_t()
        gemm_dtype = np.result_type(x.dtype, weight_t.dtype)
        xp = self._padded_input(x, arena)
        out = arena.take(f"{self.tag}:out", (n, oh, ow, self.c_out), gemm_dtype)
        rows = self._slab_rows(plan, n * ow * (k + self.bias_rows), x.dtype.itemsize)
        if rows >= oh:
            # The ones column multiplying the appended bias row is set by
            # take_filled exactly once; im2col rewrites only the first k
            # columns each call.
            cols = arena.take_filled(
                f"{self.tag}:cols", (n * oh * ow, k + self.bias_rows), x.dtype, 1.0
            )
            im2col_nhwc(xp, self.kernel, self.stride, out=cols[:, :k])
            out_mat = out.reshape(n * oh * ow, self.c_out)
            np.matmul(cols, weight_t, out=out_mat)
            return self._store(out, arena)
        for r0 in range(0, oh, rows):
            r1 = min(r0 + rows, oh)
            x_slab = xp[:, r0 * self.stride : (r1 - 1) * self.stride + kh, :, :]
            cols = arena.take_filled(
                f"{self.tag}:cols",
                (n * (r1 - r0) * ow, k + self.bias_rows),
                x.dtype,
                1.0,
            )
            im2col_nhwc(x_slab, self.kernel, self.stride, out=cols[:, :k])
            tile = arena.take(f"{self.tag}:tile", (len(cols), self.c_out), gemm_dtype)
            np.matmul(cols, weight_t, out=tile)
            if self.relu:
                np.maximum(tile, 0.0, out=tile)
            out[:, r0:r1] = tile.reshape(n, r1 - r0, ow, self.c_out)
        return out

    # -- grouped-contraction SPM path ---------------------------------
    def _run_gather(self, x, state):
        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        k2 = kh * kw
        oh, ow = plan.out_hw
        gather = self.encoded.gather_plan()
        grouped = self.encoded.grouped_weight_matrix()  # (|P|*C_in*n, C_out)
        gemm_dtype = np.result_type(x.dtype, grouped.dtype)
        xp = self._padded_input(x, arena)
        out = arena.take(f"{self.tag}:out", (n, oh, ow, self.c_out), gemm_dtype)
        per_row = n * ow * max(k2 * self.c_in, grouped.shape[0])
        rows = self._slab_rows(plan, per_row, x.dtype.itemsize)
        for r0 in range(0, oh, rows):
            r1 = min(r0 + rows, oh)
            x_slab = xp[:, r0 * self.stride : (r1 - 1) * self.stride + kh, :, :]
            cols, _ = im2col_nhwc(
                x_slab,
                self.kernel,
                self.stride,
                out=arena.take(
                    f"{self.tag}:cols", (n * (r1 - r0) * ow, k2 * self.c_in), x.dtype
                ),
            )
            # NHWC columns are (position, channel); gather the |P| pattern
            # position sets, then order (code, channel, slot) to match the
            # grouped weight matrix's layout.
            cols_r = cols.reshape(-1, k2, self.c_in)
            gathered = cols_r[:, gather.positions_by_code, :]  # (W, |P|, n, C)
            a_mat = gathered.transpose(0, 1, 3, 2).reshape(len(cols_r), -1)
            tile = a_mat @ grouped
            self.epilogue.apply(tile)
            out[:, r0:r1] = tile.reshape(n, r1 - r0, ow, self.c_out)
        return out

    # -- forced-backend fallback through the engine -------------------
    def _dense_weight_nchw(self) -> Optional[np.ndarray]:
        if self._weight_nchw is None and self.weight_t is not None:
            kh, kw = self.kernel
            k = kh * kw * self.c_in
            self._weight_nchw = np.ascontiguousarray(
                self.weight_t[:k].T.reshape(self.c_out, kh, kw, self.c_in).transpose(
                    0, 3, 1, 2
                )
            )
        return self._weight_nchw

    def _decoded_weight_t(self) -> np.ndarray:
        """Memoized NHWC GEMM weight decoded from a diverse-codebook SPM
        (bias row appended when the layer carries one, as for dense)."""
        if self._decoded_t is None:
            decoded = (
                self.encoded.decoded_weight()
                .transpose(0, 2, 3, 1)
                .reshape(self.c_out, -1)
                .T
            )
            if self.bias_rows:
                decoded = np.vstack(
                    [decoded, self.epilogue.bias.astype(decoded.dtype)[None, :]]
                )
            self._decoded_t = np.ascontiguousarray(decoded)
        return self._decoded_t

    def _run_via_engine(self, x, state, override):
        arena = state.arena
        n, h, w, c = x.shape
        x_nchw = arena.take(f"{self.tag}:nchw-in", (n, c, h, w), x.dtype)
        x_nchw[...] = x.transpose(0, 3, 1, 2)
        out_nchw = dispatch(
            x_nchw,
            self._dense_weight_nchw() if self.encoded is None else None,
            encoded=self.encoded,
            stride=self.stride,
            padding=self.padding,
            backend=override,
            cache=state.plans,
            workspace={"arena": arena, "tag": f"{self.tag}:engine"},
            epilogue=self.epilogue,
        )
        n2, c2, oh, ow = out_nchw.shape
        out = arena.take(f"{self.tag}:nhwc-out", (n2, oh, ow, c2), out_nchw.dtype)
        out[...] = out_nchw.transpose(0, 2, 3, 1)
        return out

    def describe(self) -> str:
        kind = "spm-conv" if self.encoded is not None else "conv"
        fused = []
        if self.epilogue.bias is not None:
            fused.append("bias")
        if self.epilogue.relu:
            fused.append("relu")
        return f"{kind}" + (f"+{'+'.join(fused)}" if fused else "")


@dataclass
class LinearOp(_InferenceOp):
    """Affine head with optional fused ReLU (outputs are small)."""

    weight: np.ndarray
    bias: Optional[np.ndarray]
    relu: bool
    tag: str

    def run(self, x, state, backend):
        out = x @ self.weight.T
        if self.bias is not None:
            out += self.bias.astype(out.dtype, copy=False)
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def describe(self) -> str:
        return "linear+relu" if self.relu else "linear"


@dataclass
class BatchNormOp(_InferenceOp):
    """Standalone eval-mode BN (only when no conv precedes it)."""

    scale4: np.ndarray  # (1, 1, 1, C), channels-last
    shift4: np.ndarray
    relu: bool
    tag: str

    def run(self, x, state, backend):
        out = state.arena.take(
            f"{self.tag}:out", x.shape, np.result_type(x.dtype, self.scale4.dtype)
        )
        np.multiply(x, self.scale4, out=out)
        out += self.shift4
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def describe(self) -> str:
        return "batchnorm+relu" if self.relu else "batchnorm"


@dataclass
class ReluOp(_InferenceOp):
    """Standalone ReLU into an op-private arena buffer (never aliases)."""

    tag: str

    def run(self, x, state, backend):
        out = state.arena.take(f"{self.tag}:out", x.shape, x.dtype)
        return np.maximum(x, 0.0, out=out)

    def describe(self) -> str:
        return "relu"


def _pool_out(arena: Arena, tag: str, halo, shape, dtype) -> np.ndarray:
    """Pool output buffer — the consumer's pad interior under halo fusion."""
    if halo is not None:
        consumer_tag, p = halo
        n, oh, ow, c = shape
        buffer = arena.take_filled(
            f"{consumer_tag}:pad", (n, oh + 2 * p, ow + 2 * p, c), dtype, 0.0
        )
        return buffer[:, p : p + oh, p : p + ow, :]
    return arena.take(f"{tag}:out", shape, dtype)


@dataclass
class MaxPoolOp(_InferenceOp):
    kernel: int
    stride: int
    padding: int
    tag: str
    halo: Optional[Tuple[str, int]] = None

    def run(self, x, state, backend):
        if self.padding > 0:
            # -inf borders so padded cells never win; filled once at
            # allocation, only the interior is copied per call.
            n, h, w, c = x.shape
            p = self.padding
            buf = state.arena.take_filled(
                f"{self.tag}:pad", (n, h + 2 * p, w + 2 * p, c), x.dtype, -np.inf
            )
            buf[:, p : p + h, p : p + w, :] = x
            x = buf
        windows = pool_windows_nhwc(x, self.kernel, self.stride)
        n, oh, ow = windows.shape[:3]
        out = _pool_out(
            state.arena, self.tag, self.halo, (n, oh, ow, x.shape[3]), x.dtype
        )
        return np.max(windows, axis=(3, 4), out=out)

    def describe(self) -> str:
        return f"maxpool{self.kernel}"


@dataclass
class AvgPoolOp(_InferenceOp):
    kernel: int
    stride: int
    tag: str
    halo: Optional[Tuple[str, int]] = None

    def run(self, x, state, backend):
        windows = pool_windows_nhwc(x, self.kernel, self.stride)
        n, oh, ow = windows.shape[:3]
        out = _pool_out(
            state.arena, self.tag, self.halo, (n, oh, ow, x.shape[3]), x.dtype
        )
        return np.mean(windows, axis=(3, 4), out=out)

    def describe(self) -> str:
        return f"avgpool{self.kernel}"


@dataclass
class GlobalAvgPoolOp(_InferenceOp):
    tag: str

    def run(self, x, state, backend):
        return x.mean(axis=(1, 2))  # NHWC -> (N, C)

    def describe(self) -> str:
        return "globalavgpool"


@dataclass
class FlattenOp(_InferenceOp):
    """NCHW-ordered flatten of a channels-last activation."""

    tag: str

    def run(self, x, state, backend):
        n, h, w, c = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, c * h * w), x.dtype)
        out.reshape(n, c, h, w)[...] = x.transpose(0, 3, 1, 2)
        return out

    def describe(self) -> str:
        return "flatten"


@dataclass
class ResidualOp(_InferenceOp):
    """Body + shortcut with the post-add ReLU applied in place."""

    body: List[_InferenceOp]
    shortcut: List[_InferenceOp]
    relu: bool
    tag: str

    def run(self, x, state, backend):
        out = x
        for op in self.body:
            out = op.run(out, state, backend)
        identity = x
        for op in self.shortcut:
            identity = op.run(identity, state, backend)
        if out is x:  # degenerate empty body: do not mutate the input
            out = x.copy()
        np.add(out, identity, out=out)
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def describe(self) -> str:
        body = " ".join(op.describe() for op in self.body)
        down = " ".join(op.describe() for op in self.shortcut) or "identity"
        return f"residual[{body} | {down}]"


@dataclass
class ModuleOp(_InferenceOp):
    """Fallback: run an unlowered module under no_grad in eval mode."""

    module: nn.Module
    tag: str

    def run(self, x, state, backend):
        was_training = self.module.training
        self.module.eval()
        try:
            with nn.no_grad():
                return self.module(nn.Tensor(x, dtype=None)).data
        finally:
            self.module.train(was_training)

    def describe(self) -> str:
        return f"module:{type(self.module).__name__}"


# ---------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------
@dataclass
class _Residual:
    """Intermediate marker for a two-branch residual step."""

    body: List[object]
    shortcut: List[object]
    relu: bool


def _expand(module: nn.Module) -> List[object]:
    """Expand a module tree into primitive steps and residual markers."""
    if isinstance(module, (nn.Dropout, nn.Identity)):
        return []  # eval-mode no-ops
    if isinstance(module, nn.Sequential):
        return [step for child in module for step in _expand(child)]
    branches = getattr(module, "lowering_branches", None)
    if branches is not None:
        # Hook contract: (body, shortcut) applies ReLU after the add
        # (the classic post-activation block); a 3-tuple
        # (body, shortcut, post_relu) makes the activation explicit for
        # pre-activation-style blocks.
        parts = branches()
        body, shortcut = parts[0], parts[1]
        relu = parts[2] if len(parts) > 2 else True
        return [
            _Residual(
                body=[s for m in body for s in _expand(m)],
                shortcut=[s for m in shortcut for s in _expand(m)],
                relu=relu,
            )
        ]
    sequence = getattr(module, "lowering_sequence", None)
    if sequence is not None:
        return [step for child in sequence() for step in _expand(child)]
    return [module]


def _cast(array: Optional[np.ndarray], dtype) -> Optional[np.ndarray]:
    if array is None or dtype is None:
        return array
    return np.ascontiguousarray(array, dtype=dtype)


def _make_conv_op(step: nn.Conv2d, bn, relu: bool, dtype, tag: str) -> ConvOp:
    """Lower one conv (with optional BN to fold and fused ReLU)."""
    params = step.inference_params()
    weight, bias, encoded = params["weight"], params["bias"], params["encoded"]
    if bn is not None:
        if encoded is not None:
            scale, shift = bn.fold_params()
            encoded = _fold_encoded(encoded, scale, dtype)
            bias = shift if bias is None else shift + bias * scale
        else:
            weight, bias = fold_batchnorm(weight, bias, bn)
    elif encoded is not None:
        encoded = _cast_encoded(encoded, dtype)

    kh = kw = step.kernel_size
    k2 = kh * kw
    use_gather = False
    weight_t = None
    bias = _cast(bias, dtype)
    bias_rows = 0
    if encoded is not None:
        # FLOP-optimal policy: gather only when the grouped contraction
        # is narrower than the dense one (see GATHER_WIDTH_LIMIT).
        n_nonzero = encoded.codebook.n_nonzero
        use_gather = len(encoded.codebook) * n_nonzero / k2 <= GATHER_WIDTH_LIMIT
        if not use_gather and bias is not None:
            bias_rows = 1  # the lazily decoded dense weight appends it
    else:
        weight = _cast(weight, dtype)
        weight_t = np.ascontiguousarray(
            weight.transpose(0, 2, 3, 1).reshape(step.out_channels, -1).T
        )
        if bias is not None:
            # Append the bias as a GEMM row; the column buffer carries a
            # matching all-ones column, so the bias add costs one extra
            # GEMM row instead of a pass over the output.
            weight_t = np.ascontiguousarray(
                np.vstack([weight_t, bias.astype(weight_t.dtype)[None, :]])
            )
            bias_rows = 1
    return ConvOp(
        weight_t=weight_t,
        bias_rows=bias_rows,
        encoded=encoded,
        use_gather=use_gather,
        epilogue=Epilogue(bias=bias, relu=relu),
        relu=relu,
        stride=step.stride,
        padding=step.padding,
        backend=params["backend"],
        kernel=(kh, kw),
        c_in=step.in_channels,
        c_out=step.out_channels,
        tag=tag,
    )


def _build_ops(
    steps: Sequence[object], dtype, tags: Iterator[int], entry_fmt: str = "nchw"
) -> Tuple[List[_InferenceOp], str]:
    """Turn expanded steps into ops, fusing conv→BN→ReLU peepholes.

    Tracks the activation layout (``nchw`` / ``nhwc`` / ``flat``) and
    inserts :class:`ToNHWC` / :class:`ToNCHW` conversions where an op's
    native layout differs; returns ``(ops, exit_format)``.
    """
    ops: List[_InferenceOp] = []
    fmt = entry_fmt

    def ensure(want: str) -> None:
        nonlocal fmt
        if fmt == want or fmt == "flat":
            if fmt == "flat" and want != "flat":
                raise TypeError(
                    "cannot lower: a spatial op follows a flattened activation"
                )
            return
        if want == "nhwc":
            ops.append(ToNHWC(tag=f"op{next(tags)}"))
        else:
            ops.append(ToNCHW(tag=f"op{next(tags)}"))
        fmt = want

    i = 0
    while i < len(steps):
        step = steps[i]
        tag = f"op{next(tags)}"
        if isinstance(step, _Residual):
            ensure("nhwc")
            body, body_fmt = _build_ops(step.body, dtype, tags, entry_fmt="nhwc")
            if body_fmt == "nchw":
                body.append(ToNHWC(tag=f"op{next(tags)}"))
            shortcut, short_fmt = _build_ops(step.shortcut, dtype, tags, entry_fmt="nhwc")
            if short_fmt == "nchw":
                shortcut.append(ToNHWC(tag=f"op{next(tags)}"))
            ops.append(ResidualOp(body=body, shortcut=shortcut, relu=step.relu, tag=tag))
            i += 1
            continue
        if isinstance(step, nn.Conv2d):
            i += 1
            bn = None
            if i < len(steps) and isinstance(steps[i], nn.BatchNorm2d):
                bn = steps[i]
                i += 1
            relu = i < len(steps) and isinstance(steps[i], nn.ReLU)
            if relu:
                i += 1
            ensure("nhwc")
            ops.append(_make_conv_op(step, bn, relu, dtype, tag))
            continue
        if isinstance(step, nn.Linear):
            weight = step.weight.data
            if step._weight_mask is not None:
                weight = weight * step._weight_mask
            bias = step.bias.data if step.bias is not None else None
            i += 1
            relu = i < len(steps) and isinstance(steps[i], nn.ReLU)
            if relu:
                i += 1
            ops.append(
                LinearOp(
                    weight=_cast(weight, dtype),
                    bias=_cast(bias, dtype),
                    relu=relu,
                    tag=tag,
                )
            )
            fmt = "flat"
            continue
        if isinstance(step, nn.BatchNorm2d):
            scale, shift = step.fold_params()
            i += 1
            relu = i < len(steps) and isinstance(steps[i], nn.ReLU)
            if relu:
                i += 1
            ensure("nhwc")
            c = step.num_features
            ops.append(
                BatchNormOp(
                    scale4=_cast(scale, dtype).reshape(1, 1, 1, c),
                    shift4=_cast(shift, dtype).reshape(1, 1, 1, c),
                    relu=relu,
                    tag=tag,
                )
            )
            continue
        i += 1
        if isinstance(step, nn.ReLU):
            ops.append(ReluOp(tag=tag))  # elementwise: any layout
        elif isinstance(step, nn.MaxPool2d):
            ensure("nhwc")
            ops.append(
                MaxPoolOp(
                    kernel=step.kernel_size,
                    stride=step.stride,
                    padding=step.padding,
                    tag=tag,
                )
            )
        elif isinstance(step, nn.AvgPool2d):
            ensure("nhwc")
            ops.append(AvgPoolOp(kernel=step.kernel_size, stride=step.stride, tag=tag))
        elif isinstance(step, nn.GlobalAvgPool2d):
            ensure("nhwc")
            ops.append(GlobalAvgPoolOp(tag=tag))
            fmt = "flat"
        elif isinstance(step, nn.Flatten):
            ensure("nhwc")
            ops.append(FlattenOp(tag=tag))
            fmt = "flat"
        elif isinstance(step, nn.Module):
            if fmt == "nhwc":
                ops.append(ToNCHW(tag=f"op{next(tags)}"))
                fmt = "nchw"
            ops.append(ModuleOp(module=step, tag=tag))
        else:  # pragma: no cover - lowering hooks only yield modules
            raise TypeError(f"cannot lower step {step!r}")
    return ops, fmt


def _link_halo(ops: List[_InferenceOp]) -> None:
    """Connect producers to their consumer's padded input buffer.

    When op ``i+1`` is a padded :class:`ConvOp` and op ``i`` is a conv or
    pool feeding it directly, op ``i`` writes its activation straight
    into the interior of the consumer's zero-bordered pad buffer — the
    consumer's :meth:`ConvOp._padded_input` then recognises its own
    buffer (``x.base is buffer``) and skips the pad copy entirely. The
    hand-off is best-effort: any producer path that cannot honour it
    (slab tiling, gather, forced backends) simply returns its own buffer
    and the consumer copies as usual.
    """
    for a, b in zip(ops, ops[1:]):
        if (
            isinstance(b, ConvOp)
            and b.padding > 0
            and isinstance(a, (ConvOp, MaxPoolOp, AvgPoolOp))
        ):
            a.halo = (b.tag, b.padding)
    for op in ops:
        if isinstance(op, ResidualOp):
            _link_halo(op.body)
            _link_halo(op.shortcut)


class CompiledModel:
    """Flat inference pipeline produced by :func:`compile_model`.

    Callable on ``(N, C, H, W)`` numpy batches; inputs are cast once to
    the compile dtype, converted to channels-last at entry, and outputs
    are returned in the eager model's layout. Execution resources
    (buffer arena) are thread-local, so one compiled model serves
    micro-batches from a thread pool concurrently
    (``predict(..., workers=N)``); the plan cache is shared and
    lock-protected.
    """

    def __init__(self, ops: List[_InferenceOp], dtype, source: str = "") -> None:
        self.ops = ops
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.source = source
        self.plans = PlanCache()
        #: :class:`~repro.runtime.quant.QuantizationReport` when the
        #: pipeline was compiled with ``quantize=``, else ``None``.
        self.quantization = None
        self._local = threading.local()

    # -- resources -----------------------------------------------------
    def _state(self) -> _ExecState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ExecState(arena=Arena(), plans=self.plans)
            self._local.state = state
        return state

    @property
    def arena(self) -> Arena:
        """The calling thread's buffer arena (stats/introspection)."""
        return self._state().arena

    # -- execution -----------------------------------------------------
    def __call__(self, x: np.ndarray, *, backend: Optional[str] = None) -> np.ndarray:
        """Run the compiled pipeline over a batch.

        ``backend`` forces every conv onto one engine backend, mirroring
        ``predict(..., backend=...)`` on eager models.
        """
        x = np.asarray(x)
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) inputs, got shape {x.shape}")
        if self.dtype is not None and x.dtype != self.dtype:
            x = x.astype(self.dtype)
        state = self._state()
        out = x
        for op in self.ops:
            out = op.run(out, state, backend)
        # The last op's result may be a view into an arena buffer that the
        # next call will overwrite; hand back an owned copy (outputs are
        # head-sized, so this is cheap).
        return np.array(out, copy=True)

    def describe(self) -> str:
        """One line per op — what got folded and fused where."""
        header = f"CompiledModel({self.source or 'model'}, dtype={self.dtype})"
        lines = [f"  {i}: {op.describe()}" for i, op in enumerate(self.ops)]
        if self.quantization is not None:
            lines.append("  quantization: " + self.quantization.describe())
        return "\n".join([header] + lines)

    def __repr__(self) -> str:
        return (
            f"CompiledModel(ops={len(self.ops)}, dtype={self.dtype}, "
            f"source={self.source!r})"
        )


def compile_model(
    model: nn.Module,
    dtype=np.float32,
    *,
    quantize=None,
    calibration: Optional[np.ndarray] = None,
) -> CompiledModel:
    """Lower ``model`` to a :class:`CompiledModel` inference pipeline.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`. Known structures (Sequential
        chains, modules exposing ``lowering_sequence`` /
        ``lowering_branches``) lower to fused channels-last ops; anything
        else runs via a :class:`ModuleOp` fallback, so compilation always
        succeeds.
    dtype:
        Inference dtype, cast once at compile time. ``np.float32``
        (default) halves GEMM memory traffic vs the float64 training
        graph; ``None`` keeps each parameter's own dtype.
    quantize:
        Lower eligible convolutions to the int8 execution path
        (:mod:`repro.runtime.quant`): ``"int8"``/``True`` for the
        defaults, an int bit width, or a full
        :class:`~repro.runtime.quant.QuantizationConfig`. Requires
        ``calibration``. The resulting pipeline records what happened on
        ``CompiledModel.quantization``.
    calibration:
        Small ``(N, C, H, W)`` batch used to calibrate activation scales
        when ``quantize`` is given (a handful of representative images
        is enough; see ``QuantizationConfig.calibration_images``).

    Notes
    -----
    The compiled pipeline snapshots weights, masks, BN statistics and SPM
    encodings *at compile time* — mutating the source model afterwards
    (fine-tuning, ``load_state_dict``) requires compiling again.
    """
    ops, fmt = _build_ops(_expand(model), dtype, count())
    if fmt == "nhwc":
        # Features-only models must hand back the eager NCHW layout.
        ops.append(ToNCHW(tag="out"))
    report = None
    config = None
    if quantize is not None:
        from .quant import quantize_pipeline, resolve_quantization

        config = resolve_quantization(quantize)
    if config is not None:
        if calibration is None:
            raise ValueError(
                "compile_model(quantize=...) needs a calibration= batch "
                "to derive activation scales from"
            )
        ops, report = quantize_pipeline(ops, dtype, calibration, config)
    _link_halo(ops)
    compiled = CompiledModel(ops, dtype=dtype, source=type(model).__name__)
    compiled.quantization = report
    return compiled
