"""Compiled inference pipeline: ops, the compiled model, and its entry point.

:func:`compile_model` performs the autograd→inference split real serving
runtimes make — but since PR 5 it no longer does so in one monolithic
walk. The model lowers to a small graph IR (:mod:`repro.runtime.ir`:
ops with explicit producer/consumer links and per-edge tensor metadata)
and a :class:`~repro.runtime.passes.PassManager` transforms that graph
through named, independently-testable passes::

    lower → fold_bn → fuse_epilogues → [tune] → [quantize]
          → link_halos → assign_arenas → finalize

What the pipeline ends up with (see :mod:`repro.runtime.passes` for the
per-pass detail):

- **BN folding** — every eval-mode ``BatchNorm2d`` collapses into the
  preceding conv's weights and bias, including convs that carry an SPM
  encoding (scaling a kernel's non-zero sequence never moves its
  pattern).
- **Fused epilogues** — bias add and a following ``ReLU`` run in place
  on the conv's GEMM output while the tile is cache-hot, the bias
  itself riding inside the GEMM as an appended weight row against an
  all-ones column.
- **One-time float32 cast** — parameters are cast once when the ops are
  finalized (``dtype=None`` keeps the training precision).
- **Channels-last layout** — activations flow NHWC between ops; the
  conv GEMM's output *is* the next layer's channels-last activation.
- **Workspace arenas** — each op draws scratch buffers from a
  per-thread :class:`~repro.runtime.arena.Arena`, so the steady-state
  loop does zero large allocations.
- **Halo linking** — producers write activations straight into the
  consumer's padded-buffer interior, skipping the pad copy.
- **Per-layer schedules** — SPM convs gather natively from pattern
  storage when the grouped contraction is narrower than the dense GEMM
  (the static rule in :mod:`repro.runtime.tune`), and
  ``compile_model(tune="cost"|"measure")`` replaces that heuristic with
  the analytic accelerator cost model or short empirical measurements
  persisted in a :class:`~repro.runtime.tune.TuningCache`.

Residual topologies lower through two small model-side hooks instead of
tracing: ``lowering_sequence()`` (an ordered list of submodules — VGG16,
ResNet18, PatternNet) and ``lowering_branches()``
(``(body, shortcut[, post_relu])`` — BasicBlock). Anything the lowerer
does not recognise falls back to a :class:`ModuleOp` that runs the
original module under ``no_grad``, so ``compile_model`` is total.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import nn
from ..nn.functional import im2col_nhwc, pool_windows_nhwc
from .arena import Arena
from .backends import Epilogue
from .engine import dispatch
from .ir import Graph, TensorMeta
from .plan import ExecutionPlan, PlanCache
from .tune import GATHER_WIDTH_LIMIT  # noqa: F401  (canonical home: tune.py)

__all__ = ["compile_model", "CompiledModel", "fold_batchnorm"]

# Per-conv workspace budget (bytes) for the compiled executor's im2col
# slabs. Byte-based rather than element-based so the float32 pipeline
# gets twice the rows of a float64 one for the same memory footprint;
# larger monolithic slabs measurably beat many small GEMMs until the
# workspace falls out of cache. A tuned ``ConvOp.slab_bytes`` overrides
# this budget per layer (still batch-adaptive: rows are derived from the
# budget at each call's geometry).
SLAB_BYTES = 64 * 2**20


# ---------------------------------------------------------------------
# Folding helpers
# ---------------------------------------------------------------------
def fold_batchnorm(
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    bn: "nn.BatchNorm2d",
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an eval-mode BN into the preceding conv's weight and bias.

    Returns ``(weight', bias')`` with
    ``conv(x, w') + b' == BN(conv(x, w) + b)`` for the BN's current
    running statistics.
    """
    scale, shift = bn.fold_params()
    return fold_batchnorm_params(weight, bias, scale, shift)


def fold_batchnorm_params(
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    scale: np.ndarray,
    shift: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold a BN's affine map ``(scale, shift)`` into conv parameters."""
    folded_weight = weight * scale[:, None, None, None]
    folded_bias = shift if bias is None else shift + bias * scale
    return folded_weight, folded_bias


def _fold_encoded(encoded, scale: np.ndarray, dtype):
    """Scale an SPM-encoded layer's values per output filter.

    Kernels are stored in ``(filter, channel)`` row-major order, so
    kernel ``k`` belongs to filter ``k // C_in``; scaling the non-zero
    sequences leaves codes and codebook untouched.
    """
    from ..core.spm import EncodedLayer

    c_out, c_in, kh, kw = encoded.shape
    filters = np.arange(encoded.num_kernels) // c_in
    values = encoded.values * scale[filters][:, None]
    if dtype is not None:
        values = values.astype(dtype, copy=False)
    return EncodedLayer(
        codes=encoded.codes,
        values=values,
        codebook=encoded.codebook,
        shape=encoded.shape,
    )


def _cast_encoded(encoded, dtype):
    """Re-wrap an encoding with values cast to the compile dtype."""
    from ..core.spm import EncodedLayer

    if dtype is None or encoded.values.dtype == np.dtype(dtype):
        return encoded
    return EncodedLayer(
        codes=encoded.codes,
        values=encoded.values.astype(dtype),
        codebook=encoded.codebook,
        shape=encoded.shape,
    )


def _arr_nbytes(*arrays: Optional[np.ndarray]) -> int:
    """Summed ``nbytes`` over the arrays that exist (None-tolerant)."""
    return sum(int(a.nbytes) for a in arrays if a is not None)


def _cast(array: Optional[np.ndarray], dtype) -> Optional[np.ndarray]:
    if array is None or dtype is None:
        return array
    return np.ascontiguousarray(array, dtype=dtype)


# ---------------------------------------------------------------------
# Execution state + ops
# ---------------------------------------------------------------------
@dataclass
class _ExecState:
    """Per-thread execution resources (arena is not thread-safe)."""

    arena: Arena
    plans: PlanCache


class _InferenceOp:
    """One step of the compiled pipeline: ndarray in, ndarray out.

    ``layout_in`` / ``layout_out`` declare the op's activation-layout
    contract for :meth:`repro.runtime.ir.Graph.verify` (``"any"`` /
    ``"same"`` for elementwise ops); ``spatial_only`` marks ops that can
    never follow a flattened edge.
    """

    tag: str = ""
    layout_in: str = "any"
    layout_out: str = "same"
    spatial_only: bool = False

    def run(
        self, x: np.ndarray, state: _ExecState, backend: Optional[str]
    ) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def describe(self) -> str:
        return type(self).__name__

    # -- byte accounting (fleet residency) -----------------------------
    def param_nbytes(self) -> int:
        """Bytes of *source* parameters the op owns (weights, codes) —
        the unreclaimable part that survives demotion/eviction."""
        return 0

    def derived_nbytes(self) -> int:
        """Bytes of rebuildable derived state (GEMM operands, memoized
        gathers) — what :meth:`release_derived` can hand back."""
        return 0

    def release_derived(self) -> int:
        """Drop rebuildable derived state; returns the bytes freed.

        The next :meth:`run` rebuilds lazily, so releasing is always
        safe — it trades the first post-release latency for memory.
        """
        return 0


@dataclass
class ToNHWC(_InferenceOp):
    """NCHW → channels-last, copied once into a reused buffer."""

    tag: str
    layout_in = "nchw"
    layout_out = "nhwc"

    def run(self, x, state, backend):
        n, c, h, w = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, h, w, c), x.dtype)
        out[...] = x.transpose(0, 2, 3, 1)
        return out

    def describe(self) -> str:
        return "to-nhwc"


@dataclass
class ToNCHW(_InferenceOp):
    """Channels-last → NCHW, for fallbacks and the public output."""

    tag: str
    layout_in = "nhwc"
    layout_out = "nchw"

    def run(self, x, state, backend):
        n, h, w, c = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, c, h, w), x.dtype)
        out[...] = x.transpose(0, 3, 1, 2)
        return out

    def describe(self) -> str:
        return "to-nchw"


@dataclass
class ConvOp(_InferenceOp):
    """Channels-last convolution with folded BN and a fused epilogue.

    The op is created by the ``lower`` pass with its *source*
    parameters — the raw ``weight``/``bias`` (or SPM ``encoded``) plus
    geometry — and mutated by later passes: ``fold_bn`` rewrites the
    parameters, ``fuse_epilogues`` sets ``relu``, ``tune`` picks
    ``use_gather``/``slab_bytes``, ``link_halos`` sets ``halo``. The
    *derived* GEMM state (``weight_t`` — the ``(KH*KW*C_in[+1], C_out)``
    NHWC operand with the bias folded in as an extra row against an
    all-ones column — plus the :class:`Epilogue`) is built by
    :meth:`prepare`, which the ``finalize`` pass runs eagerly and
    :meth:`run` on demand; a pass that changes source parameters calls
    :meth:`invalidate` to force a rebuild.

    SPM-encoded layers keep their encoding and run the
    grouped-contraction gather natively on NHWC columns when
    ``use_gather`` (the static rule compares contraction widths; the
    tune pass may override it per layer), decoding once into a dense
    GEMM otherwise. A forced ``backend=`` routes through
    :func:`repro.runtime.dispatch` with layout conversions on both
    sides — correct for any registered backend, just slower.

    ``halo`` names the direct consumer's padded input buffer: the
    monolithic dense path then writes its activation straight into that
    buffer's interior, so the consumer skips its pad copy entirely.
    """

    stride: int
    padding: int
    kernel: Tuple[int, int]
    c_in: int
    c_out: int
    tag: str
    weight: Optional[np.ndarray] = None
    bias: Optional[np.ndarray] = None
    encoded: Optional[object] = None
    relu: bool = False
    backend: Optional[str] = None
    dtype: Optional[object] = None
    use_gather: bool = False
    slab_bytes: Optional[int] = None  # tuned per-layer workspace budget
    schedule: Optional[object] = None  # ConvSchedule annotation (tune pass)
    halo: Optional[Tuple[str, int]] = None  # (consumer tag, consumer padding)
    # Derived GEMM state, built by prepare():
    weight_t: Optional[np.ndarray] = field(default=None, repr=False)
    bias_rows: int = 0  # 1 when the bias is folded into weight_t, else 0
    epilogue: Optional[Epilogue] = field(default=None, repr=False)
    _weight_nchw: Optional[np.ndarray] = field(default=None, repr=False)
    _decoded_t: Optional[np.ndarray] = field(default=None, repr=False)
    _prepared: bool = field(default=False, repr=False)

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    # -- derived-state lifecycle --------------------------------------
    def prepare(self) -> None:
        """Build the GEMM operands from the current source parameters.

        Idempotent; run eagerly by the ``finalize`` pass and lazily by
        :meth:`run` (measurement clones execute before finalize).
        """
        if self._prepared:
            return
        dtype = self.dtype
        bias = _cast(self.bias, dtype)
        self.bias_rows = 0
        if self.encoded is not None:
            self.encoded = _cast_encoded(self.encoded, dtype)
            self.weight_t = None
            if not self.use_gather and bias is not None:
                self.bias_rows = 1  # the lazily decoded dense weight appends it
        else:
            weight = _cast(self.weight, dtype)
            weight_t = np.ascontiguousarray(
                weight.transpose(0, 2, 3, 1).reshape(self.c_out, -1).T
            )
            if bias is not None:
                # Append the bias as a GEMM row; the column buffer carries
                # a matching all-ones column, so the bias add costs one
                # extra GEMM row instead of a pass over the output.
                weight_t = np.ascontiguousarray(
                    np.vstack([weight_t, bias.astype(weight_t.dtype)[None, :]])
                )
                self.bias_rows = 1
            self.weight_t = weight_t
        self.epilogue = Epilogue(bias=bias, relu=self.relu)
        self._prepared = True

    def invalidate(self) -> None:
        """Drop derived GEMM state after a pass mutated source params."""
        self.weight_t = None
        self.bias_rows = 0
        self.epilogue = None
        self._weight_nchw = None
        self._decoded_t = None
        self._prepared = False

    def param_nbytes(self) -> int:
        total = _arr_nbytes(self.weight, self.bias)
        if self.encoded is not None:
            total += self.encoded.nbytes
        return total

    def derived_nbytes(self) -> int:
        total = _arr_nbytes(self.weight_t, self._weight_nchw, self._decoded_t)
        if self.encoded is not None:
            total += self.encoded.cached_nbytes
        return total

    def release_derived(self) -> int:
        freed = self.derived_nbytes()
        self.invalidate()
        if self.encoded is not None:
            self.encoded.invalidate_caches()
        return freed

    def clone_with(
        self, *, use_gather: Optional[bool] = None, slab_bytes: Optional[int] = None
    ) -> "ConvOp":
        """Fresh unprepared copy with an overridden schedule (tuner probes)."""
        return ConvOp(
            stride=self.stride,
            padding=self.padding,
            kernel=self.kernel,
            c_in=self.c_in,
            c_out=self.c_out,
            tag=self.tag,
            weight=self.weight,
            bias=self.bias,
            encoded=self.encoded,
            relu=self.relu,
            backend=None,
            dtype=self.dtype,
            use_gather=self.use_gather if use_gather is None else use_gather,
            slab_bytes=slab_bytes,
        )

    def run(self, x, state, backend):
        if not self._prepared:
            self.prepare()
        override = backend or self.backend
        if override is not None:
            return self._run_via_engine(x, state, override)
        if self.use_gather:
            return self._run_gather(x, state)
        return self._run_dense(x, state)

    # -- shared geometry ----------------------------------------------
    def _plan(self, x: np.ndarray, state: _ExecState) -> ExecutionPlan:
        n, h, w, c = x.shape
        kh, kw = self.kernel
        key = ("nhwc", (n, h, w, c), (self.c_out, c, kh, kw), self.stride, self.padding)
        return state.plans.get_or_build(
            key,
            lambda: ExecutionPlan.build(
                key, (n, c, h, w), (self.c_out, c, kh, kw), self.stride, self.padding
            ),
        )

    def _slab_rows(self, plan: ExecutionPlan, per_row: int, itemsize: int) -> int:
        oh, _ = plan.out_hw
        # A tuned schedule replaces the budget, not the row count, so the
        # workspace footprint it was measured at holds for every batch.
        budget_bytes = SLAB_BYTES if self.slab_bytes is None else self.slab_bytes
        budget = budget_bytes // max(1, itemsize)
        return max(1, min(oh, budget // max(1, per_row)))

    def _padded_input(self, x: np.ndarray, arena: Arena) -> np.ndarray:
        """Zero-padded input, skipping the copy when the producer already
        wrote into this op's pad buffer interior (halo fusion)."""
        if self.padding <= 0:
            return x
        n, h, w, c = x.shape
        p = self.padding
        buffer = arena.take_filled(
            f"{self.tag}:pad", (n, h + 2 * p, w + 2 * p, c), x.dtype, 0.0
        )
        if x.base is buffer:
            return buffer
        buffer[:, p : p + h, p : p + w, :] = x
        return buffer

    def _store(self, out4: np.ndarray, arena: Arena) -> np.ndarray:
        """Activation hand-off: relu (+copy into the consumer's halo)."""
        if self.halo is not None:
            consumer_tag, p = self.halo
            n, oh, ow, c = out4.shape
            buffer = arena.take_filled(
                f"{consumer_tag}:pad", (n, oh + 2 * p, ow + 2 * p, c), out4.dtype, 0.0
            )
            interior = buffer[:, p : p + oh, p : p + ow, :]
            if self.relu:
                np.maximum(out4, 0.0, out=interior)
            else:
                np.copyto(interior, out4)
            return interior
        if self.relu:
            np.maximum(out4, 0.0, out=out4)
        return out4

    # -- dense GEMM path ----------------------------------------------
    def _run_dense(self, x, state):
        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        oh, ow = plan.out_hw
        k = kh * kw * self.c_in
        if self.weight_t is not None:
            weight_t = self.weight_t
        else:
            # SPM conv lowered to decode + dense GEMM.
            weight_t = self._decoded_weight_t()
        gemm_dtype = np.result_type(x.dtype, weight_t.dtype)
        xp = self._padded_input(x, arena)
        out = arena.take(f"{self.tag}:out", (n, oh, ow, self.c_out), gemm_dtype)
        rows = self._slab_rows(plan, n * ow * (k + self.bias_rows), x.dtype.itemsize)
        if rows >= oh:
            # The ones column multiplying the appended bias row is set by
            # take_filled exactly once; im2col rewrites only the first k
            # columns each call.
            cols = arena.take_filled(
                f"{self.tag}:cols", (n * oh * ow, k + self.bias_rows), x.dtype, 1.0
            )
            im2col_nhwc(xp, self.kernel, self.stride, out=cols[:, :k])
            out_mat = out.reshape(n * oh * ow, self.c_out)
            np.matmul(cols, weight_t, out=out_mat)
            return self._store(out, arena)
        for r0 in range(0, oh, rows):
            r1 = min(r0 + rows, oh)
            x_slab = xp[:, r0 * self.stride : (r1 - 1) * self.stride + kh, :, :]
            cols = arena.take_filled(
                f"{self.tag}:cols",
                (n * (r1 - r0) * ow, k + self.bias_rows),
                x.dtype,
                1.0,
            )
            im2col_nhwc(x_slab, self.kernel, self.stride, out=cols[:, :k])
            tile = arena.take(f"{self.tag}:tile", (len(cols), self.c_out), gemm_dtype)
            np.matmul(cols, weight_t, out=tile)
            if self.relu:
                np.maximum(tile, 0.0, out=tile)
            out[:, r0:r1] = tile.reshape(n, r1 - r0, ow, self.c_out)
        return out

    # -- grouped-contraction SPM path ---------------------------------
    def _run_gather(self, x, state):
        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        k2 = kh * kw
        oh, ow = plan.out_hw
        gather = self.encoded.gather_plan()
        grouped = self.encoded.grouped_weight_matrix()  # (|P|*C_in*n, C_out)
        gemm_dtype = np.result_type(x.dtype, grouped.dtype)
        xp = self._padded_input(x, arena)
        out = arena.take(f"{self.tag}:out", (n, oh, ow, self.c_out), gemm_dtype)
        per_row = n * ow * max(k2 * self.c_in, grouped.shape[0])
        rows = self._slab_rows(plan, per_row, x.dtype.itemsize)
        for r0 in range(0, oh, rows):
            r1 = min(r0 + rows, oh)
            x_slab = xp[:, r0 * self.stride : (r1 - 1) * self.stride + kh, :, :]
            cols, _ = im2col_nhwc(
                x_slab,
                self.kernel,
                self.stride,
                out=arena.take(
                    f"{self.tag}:cols", (n * (r1 - r0) * ow, k2 * self.c_in), x.dtype
                ),
            )
            # NHWC columns are (position, channel); gather the |P| pattern
            # position sets, then order (code, channel, slot) to match the
            # grouped weight matrix's layout.
            cols_r = cols.reshape(-1, k2, self.c_in)
            gathered = cols_r[:, gather.positions_by_code, :]  # (W, |P|, n, C)
            a_mat = gathered.transpose(0, 1, 3, 2).reshape(len(cols_r), -1)
            tile = a_mat @ grouped
            self.epilogue.apply(tile)
            out[:, r0:r1] = tile.reshape(n, r1 - r0, ow, self.c_out)
        return out

    # -- forced-backend fallback through the engine -------------------
    def _dense_weight_nchw(self) -> Optional[np.ndarray]:
        if self._weight_nchw is None and self.weight_t is not None:
            kh, kw = self.kernel
            k = kh * kw * self.c_in
            self._weight_nchw = np.ascontiguousarray(
                self.weight_t[:k].T.reshape(self.c_out, kh, kw, self.c_in).transpose(
                    0, 3, 1, 2
                )
            )
        return self._weight_nchw

    def _decoded_weight_t(self) -> np.ndarray:
        """Memoized NHWC GEMM weight decoded from an SPM encoding (bias
        row appended when the layer carries one, as for dense)."""
        if self._decoded_t is None:
            decoded = (
                self.encoded.decoded_weight()
                .transpose(0, 2, 3, 1)
                .reshape(self.c_out, -1)
                .T
            )
            if self.bias_rows:
                decoded = np.vstack(
                    [decoded, self.epilogue.bias.astype(decoded.dtype)[None, :]]
                )
            self._decoded_t = np.ascontiguousarray(decoded)
        return self._decoded_t

    def _run_via_engine(self, x, state, override):
        arena = state.arena
        n, h, w, c = x.shape
        x_nchw = arena.take(f"{self.tag}:nchw-in", (n, c, h, w), x.dtype)
        x_nchw[...] = x.transpose(0, 3, 1, 2)
        out_nchw = dispatch(
            x_nchw,
            self._dense_weight_nchw() if self.encoded is None else None,
            encoded=self.encoded,
            stride=self.stride,
            padding=self.padding,
            backend=override,
            cache=state.plans,
            workspace={"arena": arena, "tag": f"{self.tag}:engine"},
            epilogue=self.epilogue,
        )
        n2, c2, oh, ow = out_nchw.shape
        out = arena.take(f"{self.tag}:nhwc-out", (n2, oh, ow, c2), out_nchw.dtype)
        out[...] = out_nchw.transpose(0, 2, 3, 1)
        return out

    def describe(self) -> str:
        kind = "spm-conv" if self.encoded is not None else "conv"
        fused = []
        if self.bias is not None:
            fused.append("bias")
        if self.relu:
            fused.append("relu")
        label = f"{kind}" + (f"+{'+'.join(fused)}" if fused else "")
        if self.schedule is not None:
            label += f" [{self.schedule.describe()}]"
        return label


@dataclass
class LinearOp(_InferenceOp):
    """Affine head with optional fused ReLU (outputs are small)."""

    weight: np.ndarray
    bias: Optional[np.ndarray]
    tag: str
    relu: bool = False

    layout_in = "flat"
    layout_out = "flat"

    def run(self, x, state, backend):
        out = x @ self.weight.T
        if self.bias is not None:
            out += self.bias.astype(out.dtype, copy=False)
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def param_nbytes(self) -> int:
        return _arr_nbytes(self.weight, self.bias)

    def describe(self) -> str:
        return "linear+relu" if self.relu else "linear"


@dataclass
class BatchNormOp(_InferenceOp):
    """Standalone eval-mode BN (only when no conv precedes it)."""

    scale: np.ndarray  # (C,), the BN's folded affine map
    shift: np.ndarray
    tag: str
    relu: bool = False
    dtype: Optional[object] = None
    scale4: Optional[np.ndarray] = field(default=None, repr=False)
    shift4: Optional[np.ndarray] = field(default=None, repr=False)

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    def prepare(self) -> None:
        """Build the broadcastable channels-last affine operands."""
        if self.scale4 is None:
            c = self.scale.shape[0]
            self.scale4 = _cast(self.scale, self.dtype).reshape(1, 1, 1, c)
            self.shift4 = _cast(self.shift, self.dtype).reshape(1, 1, 1, c)

    def param_nbytes(self) -> int:
        return _arr_nbytes(self.scale, self.shift)

    def derived_nbytes(self) -> int:
        return _arr_nbytes(self.scale4, self.shift4)

    def release_derived(self) -> int:
        freed = self.derived_nbytes()
        self.scale4 = None
        self.shift4 = None
        return freed

    def run(self, x, state, backend):
        self.prepare()
        out = state.arena.take(
            f"{self.tag}:out", x.shape, np.result_type(x.dtype, self.scale4.dtype)
        )
        np.multiply(x, self.scale4, out=out)
        out += self.shift4
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def describe(self) -> str:
        return "batchnorm+relu" if self.relu else "batchnorm"


@dataclass
class ReluOp(_InferenceOp):
    """Standalone ReLU into an op-private arena buffer (never aliases)."""

    tag: str

    def run(self, x, state, backend):
        out = state.arena.take(f"{self.tag}:out", x.shape, x.dtype)
        return np.maximum(x, 0.0, out=out)

    def describe(self) -> str:
        return "relu"


def _pool_out(arena: Arena, tag: str, halo, shape, dtype) -> np.ndarray:
    """Pool output buffer — the consumer's pad interior under halo fusion."""
    if halo is not None:
        consumer_tag, p = halo
        n, oh, ow, c = shape
        buffer = arena.take_filled(
            f"{consumer_tag}:pad", (n, oh + 2 * p, ow + 2 * p, c), dtype, 0.0
        )
        return buffer[:, p : p + oh, p : p + ow, :]
    return arena.take(f"{tag}:out", shape, dtype)


@dataclass
class MaxPoolOp(_InferenceOp):
    kernel: int
    stride: int
    padding: int
    tag: str
    halo: Optional[Tuple[str, int]] = None

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    def run(self, x, state, backend):
        if self.padding > 0:
            # -inf borders so padded cells never win; filled once at
            # allocation, only the interior is copied per call.
            n, h, w, c = x.shape
            p = self.padding
            buf = state.arena.take_filled(
                f"{self.tag}:pad", (n, h + 2 * p, w + 2 * p, c), x.dtype, -np.inf
            )
            buf[:, p : p + h, p : p + w, :] = x
            x = buf
        windows = pool_windows_nhwc(x, self.kernel, self.stride)
        n, oh, ow = windows.shape[:3]
        out = _pool_out(
            state.arena, self.tag, self.halo, (n, oh, ow, x.shape[3]), x.dtype
        )
        return np.max(windows, axis=(3, 4), out=out)

    def describe(self) -> str:
        return f"maxpool{self.kernel}"


@dataclass
class AvgPoolOp(_InferenceOp):
    kernel: int
    stride: int
    tag: str
    halo: Optional[Tuple[str, int]] = None

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    def run(self, x, state, backend):
        windows = pool_windows_nhwc(x, self.kernel, self.stride)
        n, oh, ow = windows.shape[:3]
        out = _pool_out(
            state.arena, self.tag, self.halo, (n, oh, ow, x.shape[3]), x.dtype
        )
        return np.mean(windows, axis=(3, 4), out=out)

    def describe(self) -> str:
        return f"avgpool{self.kernel}"


@dataclass
class GlobalAvgPoolOp(_InferenceOp):
    tag: str

    layout_in = "nhwc"
    layout_out = "flat"
    spatial_only = True

    def run(self, x, state, backend):
        return x.mean(axis=(1, 2))  # NHWC -> (N, C)

    def describe(self) -> str:
        return "globalavgpool"


@dataclass
class FlattenOp(_InferenceOp):
    """NCHW-ordered flatten of a channels-last activation."""

    tag: str

    layout_in = "nhwc"
    layout_out = "flat"
    spatial_only = True

    def run(self, x, state, backend):
        n, h, w, c = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, c * h * w), x.dtype)
        out.reshape(n, c, h, w)[...] = x.transpose(0, 3, 1, 2)
        return out

    def describe(self) -> str:
        return "flatten"


@dataclass
class ResidualOp(_InferenceOp):
    """Body + shortcut with the post-add ReLU applied in place.

    The two branches are nested :class:`~repro.runtime.ir.Graph`
    pipelines (both consuming this op's input edge), so graph passes
    recurse into them like any other ops; execution reads the cached
    linearisation.
    """

    body_graph: Graph
    shortcut_graph: Graph
    relu: bool
    tag: str

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    @property
    def body(self) -> List[_InferenceOp]:
        """The body branch's executable ops, in order."""
        return self.body_graph.op_list()

    @property
    def shortcut(self) -> List[_InferenceOp]:
        """The shortcut branch's executable ops, in order."""
        return self.shortcut_graph.op_list()

    def run(self, x, state, backend):
        out = x
        for op in self.body:
            out = op.run(out, state, backend)
        identity = x
        for op in self.shortcut:
            identity = op.run(identity, state, backend)
        if out is x:  # degenerate empty body: do not mutate the input
            out = x.copy()
        np.add(out, identity, out=out)
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def describe(self) -> str:
        body = " ".join(op.describe() for op in self.body)
        down = " ".join(op.describe() for op in self.shortcut) or "identity"
        return f"residual[{body} | {down}]"


@dataclass
class ModuleOp(_InferenceOp):
    """Fallback: run an unlowered module under no_grad in eval mode."""

    module: nn.Module
    tag: str

    # The lowerer converts spatial activations to NCHW before a fallback
    # module runs; the contract stays "any"/"same" because flat inputs
    # pass through untouched.
    layout_in = "any"
    layout_out = "same"

    def run(self, x, state, backend):
        was_training = self.module.training
        self.module.eval()
        try:
            with nn.no_grad():
                return self.module(nn.Tensor(x, dtype=None)).data
        finally:
            self.module.train(was_training)

    def param_nbytes(self) -> int:
        return sum(int(p.data.nbytes) for p in self.module.parameters())

    def describe(self) -> str:
        return f"module:{type(self.module).__name__}"


# ---------------------------------------------------------------------
# The compiled model
# ---------------------------------------------------------------------
class CompiledModel:
    """Flat inference pipeline produced by :func:`compile_model`.

    Callable on ``(N, C, H, W)`` numpy batches; inputs are cast once to
    the compile dtype, converted to channels-last at entry, and outputs
    are returned in the eager model's layout. Execution resources
    (buffer arena) are thread-local, so one compiled model serves
    micro-batches from a thread pool concurrently
    (``predict(..., workers=N)``); the plan cache is shared and
    lock-protected.

    ``graph`` holds the pass-transformed IR the op list was linearised
    from, ``passes`` the :class:`~repro.runtime.passes.PassRecord` trace
    of what each pass did, ``quantization``/``tuning`` the optional
    reports — all rendered by :meth:`describe`.
    """

    def __init__(
        self,
        graph: Union[Graph, List[_InferenceOp]],
        dtype,
        source: str = "",
        passes: Optional[List[object]] = None,
    ) -> None:
        if isinstance(graph, Graph):
            self.graph: Optional[Graph] = graph
            self.ops = list(graph.op_list())
        else:
            self.graph = None
            self.ops = list(graph)
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.source = source
        self.plans = PlanCache()
        #: Per-pass trace (:class:`~repro.runtime.passes.PassRecord`).
        self.passes = list(passes or [])
        #: :class:`~repro.runtime.quant.QuantizationReport` when the
        #: pipeline was compiled with ``quantize=``, else ``None``.
        self.quantization = None
        #: :class:`~repro.runtime.tune.TuningReport` when compiled with
        #: ``tune=``, else ``None``.
        self.tuning = None
        self._local = threading.local()
        # Every thread's _ExecState, so cross-thread byte accounting and
        # workspace release (fleet demotion) can reach arenas that the
        # creating threads own. Guarded by _states_lock; the hot path
        # only appends once per thread.
        self._states: List[_ExecState] = []
        self._states_lock = threading.Lock()
        # Observed (input tail, input dtype) -> (output tail, output
        # dtype), recorded by __call__ and served by output_geometry()
        # so empty-batch calls never need a probe forward.
        self._geometry: dict = {}

    # -- resources -----------------------------------------------------
    def _state(self) -> _ExecState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ExecState(arena=Arena(), plans=self.plans)
            self._local.state = state
            with self._states_lock:
                self._states.append(state)
        return state

    @property
    def arena(self) -> Arena:
        """The calling thread's buffer arena (stats/introspection)."""
        return self._state().arena

    # -- byte accounting & residency -----------------------------------
    def iter_ops(self):
        """Every executable op, recursing into residual branches."""

        def walk(ops):
            for op in ops:
                yield op
                if isinstance(op, ResidualOp):
                    yield from walk(op.body)
                    yield from walk(op.shortcut)

        yield from walk(self.ops)

    def memory_report(self) -> dict:
        """Byte breakdown of what this pipeline holds resident.

        ``parameters`` (weights/codes — survives demotion and eviction),
        ``derived`` (rebuildable GEMM operands and memoized gathers),
        ``plans`` (plan-cache workspace charge) and ``arenas`` (scratch
        buffers across every thread that has executed the model).
        """
        parameters = 0
        derived = 0
        for op in self.iter_ops():
            parameters += op.param_nbytes()
            derived += op.derived_nbytes()
        with self._states_lock:
            states = list(self._states)
        return {
            "parameters": parameters,
            "derived": derived,
            "plans": self.plans.nbytes,
            "arenas": sum(state.arena.nbytes for state in states),
            "threads": len(states),
        }

    def resident_nbytes(self) -> int:
        """Reclaimable resident bytes: derived + plans + arenas (the
        fleet ledger's charge for this tenant; parameters excluded —
        they are the price of keeping the model loaded at all)."""
        report = self.memory_report()
        return report["derived"] + report["plans"] + report["arenas"]

    def release_workspaces(self) -> int:
        """Demotion: drop plan cache + every thread's arena buffers.

        Parameters and derived GEMM operands stay, so the next call is a
        warm re-plan (allocate + plan, no re-prepare). Returns bytes
        freed. Safe only while no request is executing (the fleet's
        residency manager serialises this against flushes).
        """
        freed = self.plans.clear()
        with self._states_lock:
            states = list(self._states)
        for state in states:
            freed += state.arena.release()
        return freed

    def release_derived(self) -> int:
        """Eviction: additionally drop rebuildable derived op state.

        The lowered IR, pass trace and source parameters all stay — the
        next call re-runs :meth:`prepare` lazily (a warm finalize), never
        a recompile. Returns bytes freed.
        """
        freed = 0
        for op in self.iter_ops():
            freed += op.release_derived()
        return freed

    def prepare_ops(self) -> None:
        """Eagerly rebuild derived op state (the finalize pass's work) —
        re-promotion after eviction calls this off the hot path."""
        for op in self.iter_ops():
            prepare = getattr(op, "prepare", None)
            if prepare is not None:
                prepare()

    # -- execution -----------------------------------------------------
    def __call__(self, x: np.ndarray, *, backend: Optional[str] = None) -> np.ndarray:
        """Run the compiled pipeline over a batch.

        ``backend`` forces every conv onto one engine backend, mirroring
        ``predict(..., backend=...)`` on eager models.
        """
        x = np.asarray(x)
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) inputs, got shape {x.shape}")
        geometry_key = (x.shape[1:], np.dtype(x.dtype))
        if self.dtype is not None and x.dtype != self.dtype:
            x = x.astype(self.dtype)
        state = self._state()
        out = x
        for op in self.ops:
            out = op.run(out, state, backend)
        if geometry_key not in self._geometry:
            self._geometry[geometry_key] = (out.shape[1:], np.dtype(out.dtype))
        # The last op's result may be a view into an arena buffer that the
        # next call will overwrite; hand back an owned copy (outputs are
        # head-sized, so this is cheap).
        return np.array(out, copy=True)

    def output_geometry(self, input_tail, input_dtype):
        """``(output shape tail, dtype)`` for ``(N,) + input_tail`` inputs.

        Answers from geometry a real call already recorded, else derives
        it analytically by walking the op list's shape rules — no probe
        forward, no arena allocation, no worker-pool dispatch, which is
        what lets ``predict`` answer empty batches for free. Returns
        ``None`` when the pipeline's geometry cannot be derived
        statically (a :class:`ModuleOp` fallback hides its spatial
        behaviour, and ``dtype=None`` pipelines track parameter dtypes
        the walk does not model) — callers fall back to the probe.
        """
        key = (tuple(input_tail), np.dtype(input_dtype))
        entry = self._geometry.get(key)
        if entry is not None:
            return entry
        if self.dtype is None:
            return None
        tail = self._walk_geometry(self.ops, key[0])
        if tail is None:
            return None
        entry = (tail, self.dtype)
        self._geometry[key] = entry
        return entry

    @staticmethod
    def _walk_geometry(ops, tail):
        """Symbolically push a shape tail through ``ops`` (None = punt)."""
        from ..nn.functional import conv_output_size
        from .quant import DequantizeOp, QuantizeOp

        for op in ops:
            if isinstance(op, ToNHWC):
                if len(tail) != 3:
                    return None
                c, h, w = tail
                tail = (h, w, c)
            elif isinstance(op, ToNCHW):
                if len(tail) != 3:
                    return None
                h, w, c = tail
                tail = (c, h, w)
            elif isinstance(op, ConvOp):  # QuantConvOp included
                if len(tail) != 3:
                    return None
                h, w, _ = tail
                oh = conv_output_size(h, op.kernel[0], op.stride, op.padding)
                ow = conv_output_size(w, op.kernel[1], op.stride, op.padding)
                tail = (oh, ow, op.c_out)
            elif isinstance(op, MaxPoolOp):
                if len(tail) != 3:
                    return None
                h, w, c = tail
                oh = conv_output_size(h, op.kernel, op.stride, op.padding)
                ow = conv_output_size(w, op.kernel, op.stride, op.padding)
                tail = (oh, ow, c)
            elif isinstance(op, AvgPoolOp):
                if len(tail) != 3:
                    return None
                h, w, c = tail
                oh = conv_output_size(h, op.kernel, op.stride, 0)
                ow = conv_output_size(w, op.kernel, op.stride, 0)
                tail = (oh, ow, c)
            elif isinstance(op, GlobalAvgPoolOp):
                if len(tail) != 3:
                    return None
                tail = (tail[2],)
            elif isinstance(op, FlattenOp):
                if len(tail) != 3:
                    return None
                h, w, c = tail
                tail = (c * h * w,)
            elif isinstance(op, LinearOp):
                tail = (op.weight.shape[0],)
            elif isinstance(op, ResidualOp):
                tail = CompiledModel._walk_geometry(op.body, tail)
                if tail is None:
                    return None
            elif isinstance(op, (BatchNormOp, ReluOp, QuantizeOp, DequantizeOp)):
                pass  # shape-preserving
            else:  # ModuleOp or an op this walk does not know
                return None
        return tail

    def describe(self) -> str:
        """The pass-annotated pipeline: trace, ops, and reports."""
        header = f"CompiledModel({self.source or 'model'}, dtype={self.dtype})"
        lines = [header]
        if self.passes:
            trace = " -> ".join(record.name for record in self.passes)
            lines.append(f"  passes: {trace}")
            for record in self.passes:
                if record.note:
                    lines.append(f"    {record.name}: {record.note}")
        lines.extend(f"  {i}: {op.describe()}" for i, op in enumerate(self.ops))
        if self.tuning is not None:
            lines.append("  tuning: " + self.tuning.describe().replace("\n", "\n  "))
        if self.quantization is not None:
            lines.append("  quantization: " + self.quantization.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CompiledModel(ops={len(self.ops)}, dtype={self.dtype}, "
            f"source={self.source!r})"
        )


def compile_model(
    model: nn.Module,
    dtype=np.float32,
    *,
    quantize=None,
    calibration: Optional[np.ndarray] = None,
    tune: Optional[str] = None,
    input_shape: Optional[Sequence[int]] = None,
    tuning_cache=None,
    passes: Optional[Sequence[object]] = None,
) -> CompiledModel:
    """Lower ``model`` to a :class:`CompiledModel` inference pipeline.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`. Known structures (Sequential
        chains, modules exposing ``lowering_sequence`` /
        ``lowering_branches``) lower to fused channels-last ops; anything
        else runs via a :class:`ModuleOp` fallback, so compilation always
        succeeds.
    dtype:
        Inference dtype, cast once at compile time. ``np.float32``
        (default) halves GEMM memory traffic vs the float64 training
        graph; ``None`` keeps each parameter's own dtype.
    quantize:
        Lower eligible convolutions to the int8 execution path
        (:mod:`repro.runtime.quant`): ``"int8"``/``True`` for the
        defaults, an int bit width, or a full
        :class:`~repro.runtime.quant.QuantizationConfig`. Requires
        ``calibration``.
    calibration:
        Small ``(N, C, H, W)`` batch used to calibrate activation scales
        when ``quantize`` is given.
    tune:
        Pick per-layer conv schedules instead of the static heuristic:
        ``"cost"`` ranks candidates with the analytic accelerator cost
        model (:func:`repro.arch.conv_layer_cost`, zero measurement);
        ``"measure"`` additionally times the top candidates and persists
        the winners in the :class:`~repro.runtime.tune.TuningCache`
        (``~/.cache/repro-tune.json``), so later compiles of the same
        geometry skip the measurement. Requires ``input_shape``.
    input_shape:
        ``(C, H, W)`` of one input image — needed by ``tune`` to derive
        per-layer geometry (``predict``/serving/CLI fill it in).
    tuning_cache:
        Explicit :class:`~repro.runtime.tune.TuningCache` (tests,
        hermetic builds); defaults to the process-wide persisted one.
    passes:
        Override the pass list (names or
        :class:`~repro.runtime.passes.Pass` objects); the default is the
        standard sequence with ``tune``/``quantize`` included when
        requested. Ordering constraints are validated either way.

    Notes
    -----
    The compiled pipeline snapshots weights, masks, BN statistics and SPM
    encodings *at compile time* — mutating the source model afterwards
    (fine-tuning, ``load_state_dict``) requires compiling again.
    """
    from .passes import CompileContext, PassManager, default_passes
    from .quant import resolve_quantization

    config = resolve_quantization(quantize) if quantize is not None else None
    if config is not None and calibration is None:
        raise ValueError(
            "compile_model(quantize=...) needs a calibration= batch "
            "to derive activation scales from"
        )
    ctx = CompileContext(
        model=model,
        dtype=np.dtype(dtype) if dtype is not None else None,
        quantize=config,
        calibration=calibration,
        tune=tune,
        input_shape=tuple(input_shape) if input_shape is not None else None,
        tuning_cache=tuning_cache,
    )
    graph = Graph(TensorMeta("nchw"), name=type(model).__name__)
    manager = PassManager(passes if passes is not None else default_passes(ctx))
    manager.run(graph, ctx)
    compiled = CompiledModel(
        graph, dtype=dtype, source=type(model).__name__, passes=manager.records
    )
    compiled.quantization = ctx.quant_report
    compiled.tuning = ctx.tuning_report
    return compiled
