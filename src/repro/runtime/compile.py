"""Compiled inference pipeline: ops, the compiled model, and its entry point.

:func:`compile_model` performs the autograd→inference split real serving
runtimes make — but since PR 5 it no longer does so in one monolithic
walk. The model lowers to a small graph IR (:mod:`repro.runtime.ir`:
ops with explicit producer/consumer links and per-edge tensor metadata)
and a :class:`~repro.runtime.passes.PassManager` transforms that graph
through named, independently-testable passes::

    lower → fold_bn → fuse_epilogues → [tune] → [quantize]
          → link_halos → assign_arenas → finalize

What the pipeline ends up with (see :mod:`repro.runtime.passes` for the
per-pass detail):

- **BN folding** — every eval-mode ``BatchNorm2d`` collapses into the
  preceding conv's weights and bias, including convs that carry an SPM
  encoding (scaling a kernel's non-zero sequence never moves its
  pattern).
- **Fused epilogues** — bias add and a following ``ReLU`` run in place
  on the conv's GEMM output while the tile is cache-hot, the bias
  itself riding inside the GEMM as an appended weight row against an
  all-ones column.
- **One-time float32 cast** — parameters are cast once when the ops are
  finalized (``dtype=None`` keeps the training precision).
- **Channels-last layout** — activations flow NHWC between ops; the
  conv GEMM's output *is* the next layer's channels-last activation.
- **Workspace arenas** — each op draws scratch buffers from a
  per-thread :class:`~repro.runtime.arena.Arena`, so the steady-state
  loop does zero large allocations.
- **Halo linking** — producers write activations straight into the
  consumer's padded-buffer interior, skipping the pad copy.
- **Per-layer schedules** — SPM convs gather natively from pattern
  storage when the grouped contraction is narrower than the dense GEMM
  (the static rule in :mod:`repro.runtime.tune`), and
  ``compile_model(tune="cost"|"measure")`` replaces that heuristic with
  the analytic accelerator cost model or short empirical measurements
  persisted in a :class:`~repro.runtime.tune.TuningCache`.

Residual topologies lower through two small model-side hooks instead of
tracing: ``lowering_sequence()`` (an ordered list of submodules — VGG16,
ResNet18, PatternNet) and ``lowering_branches()``
(``(body, shortcut[, post_relu])`` — BasicBlock). Anything the lowerer
does not recognise falls back to a :class:`ModuleOp` that runs the
original module under ``no_grad``, so ``compile_model`` is total.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import nn
from ..nn.functional import im2col_nhwc, pool_windows_nhwc
from .arena import Arena
from .backends import Epilogue
from .engine import dispatch
from .ir import Graph, TensorMeta
from .plan import ExecutionPlan, PlanCache
from .tune import GATHER_WIDTH_LIMIT  # noqa: F401  (canonical home: tune.py)
from .winograd import transforms as wino_transforms
from .winograd import weight_transform as wino_weight_transform
from .winograd import wino_geometry

__all__ = ["compile_model", "CompiledModel", "fold_batchnorm"]

# Per-conv workspace budget (bytes) for the compiled executor's im2col
# slabs. Byte-based rather than element-based so the float32 pipeline
# gets twice the rows of a float64 one for the same memory footprint;
# larger monolithic slabs measurably beat many small GEMMs until the
# workspace falls out of cache. A tuned ``ConvOp.slab_bytes`` overrides
# this budget per layer (still batch-adaptive: rows are derived from the
# budget at each call's geometry).
SLAB_BYTES = 64 * 2**20


def trace_enabled() -> bool:
    """Whether steady-state calls run the recorded trace executor.

    ``REPRO_TRACE=0`` keeps every call on the per-op dispatch loop (the
    debug/measurement path); anything else — including unset — enables
    tracing. Read per call so tests and operators can flip it live.
    """
    return os.environ.get("REPRO_TRACE", "1") != "0"


# ---------------------------------------------------------------------
# Folding helpers
# ---------------------------------------------------------------------
def fold_batchnorm(
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    bn: "nn.BatchNorm2d",
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an eval-mode BN into the preceding conv's weight and bias.

    Returns ``(weight', bias')`` with
    ``conv(x, w') + b' == BN(conv(x, w) + b)`` for the BN's current
    running statistics.
    """
    scale, shift = bn.fold_params()
    return fold_batchnorm_params(weight, bias, scale, shift)


def fold_batchnorm_params(
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    scale: np.ndarray,
    shift: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold a BN's affine map ``(scale, shift)`` into conv parameters."""
    folded_weight = weight * scale[:, None, None, None]
    folded_bias = shift if bias is None else shift + bias * scale
    return folded_weight, folded_bias


def _fold_encoded(encoded, scale: np.ndarray, dtype):
    """Scale an SPM-encoded layer's values per output filter.

    Kernels are stored in ``(filter, channel)`` row-major order, so
    kernel ``k`` belongs to filter ``k // C_in``; scaling the non-zero
    sequences leaves codes and codebook untouched.
    """
    from ..core.spm import EncodedLayer

    c_out, c_in, kh, kw = encoded.shape
    filters = np.arange(encoded.num_kernels) // c_in
    values = encoded.values * scale[filters][:, None]
    if dtype is not None:
        values = values.astype(dtype, copy=False)
    return EncodedLayer(
        codes=encoded.codes,
        values=values,
        codebook=encoded.codebook,
        shape=encoded.shape,
    )


def _cast_encoded(encoded, dtype):
    """Re-wrap an encoding with values cast to the compile dtype."""
    from ..core.spm import EncodedLayer

    if dtype is None or encoded.values.dtype == np.dtype(dtype):
        return encoded
    return EncodedLayer(
        codes=encoded.codes,
        values=encoded.values.astype(dtype),
        codebook=encoded.codebook,
        shape=encoded.shape,
    )


def _arr_nbytes(*arrays: Optional[np.ndarray]) -> int:
    """Summed ``nbytes`` over the arrays that exist (None-tolerant)."""
    return sum(int(a.nbytes) for a in arrays if a is not None)


def _cast(array: Optional[np.ndarray], dtype) -> Optional[np.ndarray]:
    if array is None or dtype is None:
        return array
    return np.ascontiguousarray(array, dtype=dtype)


# ---------------------------------------------------------------------
# Execution state + ops
# ---------------------------------------------------------------------
@dataclass
class _ExecState:
    """Per-thread execution resources (arena is not thread-safe)."""

    arena: Arena
    plans: PlanCache
    # (input shape, dtype) -> recorded thunk list for the trace executor.
    # Thunks prebind arena buffers and GEMM operands, so the dict must be
    # cleared whenever either is released (see CompiledModel.release_*).
    traces: Dict[tuple, list] = field(default_factory=dict)


class _InferenceOp:
    """One step of the compiled pipeline: ndarray in, ndarray out.

    ``layout_in`` / ``layout_out`` declare the op's activation-layout
    contract for :meth:`repro.runtime.ir.Graph.verify` (``"any"`` /
    ``"same"`` for elementwise ops); ``spatial_only`` marks ops that can
    never follow a flattened edge.
    """

    tag: str = ""
    layout_in: str = "any"
    layout_out: str = "same"
    spatial_only: bool = False

    def run(
        self, x: np.ndarray, state: _ExecState, backend: Optional[str]
    ) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def make_thunk(
        self, x: np.ndarray, state: _ExecState
    ) -> Optional[Callable[[np.ndarray], np.ndarray]]:
        """Prebound steady-state closure for ``x``'s geometry, or None.

        Called by the trace recorder with the op's actual input; a
        returned thunk must be equivalent to ``run(x, state, None)`` for
        every later input of the same shape/dtype/buffer identity. None
        keeps the op on generic dispatch inside the trace.
        """
        return None

    def describe(self) -> str:
        return type(self).__name__

    # -- byte accounting (fleet residency) -----------------------------
    def param_nbytes(self) -> int:
        """Bytes of *source* parameters the op owns (weights, codes) —
        the unreclaimable part that survives demotion/eviction."""
        return 0

    def derived_nbytes(self) -> int:
        """Bytes of rebuildable derived state (GEMM operands, memoized
        gathers) — what :meth:`release_derived` can hand back."""
        return 0

    def release_derived(self) -> int:
        """Drop rebuildable derived state; returns the bytes freed.

        The next :meth:`run` rebuilds lazily, so releasing is always
        safe — it trades the first post-release latency for memory.
        """
        return 0


@dataclass
class ToNHWC(_InferenceOp):
    """NCHW → channels-last, copied once into a reused buffer."""

    tag: str
    layout_in = "nchw"
    layout_out = "nhwc"

    def run(self, x, state, backend):
        n, c, h, w = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, h, w, c), x.dtype)
        out[...] = x.transpose(0, 2, 3, 1)
        return out

    def make_thunk(self, x, state):
        n, c, h, w = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, h, w, c), x.dtype)

        def thunk(x_in):
            out[...] = x_in.transpose(0, 2, 3, 1)
            return out

        return thunk

    def describe(self) -> str:
        return "to-nhwc"


@dataclass
class ToNCHW(_InferenceOp):
    """Channels-last → NCHW, for fallbacks and the public output."""

    tag: str
    layout_in = "nhwc"
    layout_out = "nchw"

    def run(self, x, state, backend):
        n, h, w, c = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, c, h, w), x.dtype)
        out[...] = x.transpose(0, 3, 1, 2)
        return out

    def make_thunk(self, x, state):
        n, h, w, c = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, c, h, w), x.dtype)

        def thunk(x_in):
            out[...] = x_in.transpose(0, 3, 1, 2)
            return out

        return thunk

    def describe(self) -> str:
        return "to-nchw"


@dataclass
class ConvOp(_InferenceOp):
    """Channels-last convolution with folded BN and a fused epilogue.

    The op is created by the ``lower`` pass with its *source*
    parameters — the raw ``weight``/``bias`` (or SPM ``encoded``) plus
    geometry — and mutated by later passes: ``fold_bn`` rewrites the
    parameters, ``fuse_epilogues`` sets ``relu``, ``tune`` picks
    ``use_gather``/``slab_bytes``, ``link_halos`` sets ``halo``. The
    *derived* GEMM state (``weight_t`` — the ``(KH*KW*C_in[+1], C_out)``
    NHWC operand with the bias folded in as an extra row against an
    all-ones column — plus the :class:`Epilogue`) is built by
    :meth:`prepare`, which the ``finalize`` pass runs eagerly and
    :meth:`run` on demand; a pass that changes source parameters calls
    :meth:`invalidate` to force a rebuild.

    SPM-encoded layers keep their encoding and run the
    grouped-contraction gather natively on NHWC columns when
    ``use_gather`` (the static rule compares contraction widths; the
    tune pass may override it per layer), decoding once into a dense
    GEMM otherwise. A forced ``backend=`` routes through
    :func:`repro.runtime.dispatch` with layout conversions on both
    sides — correct for any registered backend, just slower.

    ``halo`` names the direct consumer's padded input buffer: the
    monolithic dense path then writes its activation straight into that
    buffer's interior, so the consumer skips its pad copy entirely.
    """

    stride: int
    padding: int
    kernel: Tuple[int, int]
    c_in: int
    c_out: int
    tag: str
    weight: Optional[np.ndarray] = None
    bias: Optional[np.ndarray] = None
    encoded: Optional[object] = None
    relu: bool = False
    backend: Optional[str] = None
    dtype: Optional[object] = None
    use_gather: bool = False
    wino_m: int = 0  # Winograd output-tile size (0 = im2col/gather GEMM)
    slab_bytes: Optional[int] = None  # tuned per-layer workspace budget
    schedule: Optional[object] = None  # ConvSchedule annotation (tune pass)
    halo: Optional[Tuple[str, int]] = None  # (consumer tag, consumer padding)
    # Derived GEMM state, built by prepare():
    weight_t: Optional[np.ndarray] = field(default=None, repr=False)
    bias_rows: int = 0  # 1 when the bias is folded into weight_t, else 0
    epilogue: Optional[Epilogue] = field(default=None, repr=False)
    _weight_nchw: Optional[np.ndarray] = field(default=None, repr=False)
    _decoded_t: Optional[np.ndarray] = field(default=None, repr=False)
    _wino_u: Optional[np.ndarray] = field(default=None, repr=False)
    _prepared: bool = field(default=False, repr=False)

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    # -- derived-state lifecycle --------------------------------------
    def prepare(self) -> None:
        """Build the GEMM operands from the current source parameters.

        Idempotent; run eagerly by the ``finalize`` pass and lazily by
        :meth:`run` (measurement clones execute before finalize).
        """
        if self._prepared:
            return
        dtype = self.dtype
        bias = _cast(self.bias, dtype)
        self.bias_rows = 0
        if self.encoded is not None:
            self.encoded = _cast_encoded(self.encoded, dtype)
            self.weight_t = None
            if not self.use_gather and bias is not None:
                self.bias_rows = 1  # the lazily decoded dense weight appends it
        else:
            weight = _cast(self.weight, dtype)
            weight_t = np.ascontiguousarray(
                weight.transpose(0, 2, 3, 1).reshape(self.c_out, -1).T
            )
            if bias is not None:
                # Append the bias as a GEMM row; the column buffer carries
                # a matching all-ones column, so the bias add costs one
                # extra GEMM row instead of a pass over the output.
                weight_t = np.ascontiguousarray(
                    np.vstack([weight_t, bias.astype(weight_t.dtype)[None, :]])
                )
                self.bias_rows = 1
            self.weight_t = weight_t
        self.epilogue = Epilogue(bias=bias, relu=self.relu)
        self._prepared = True

    def invalidate(self) -> None:
        """Drop derived GEMM state after a pass mutated source params."""
        self.weight_t = None
        self.bias_rows = 0
        self.epilogue = None
        self._weight_nchw = None
        self._decoded_t = None
        self._wino_u = None
        self._prepared = False

    def param_nbytes(self) -> int:
        total = _arr_nbytes(self.weight, self.bias)
        if self.encoded is not None:
            total += self.encoded.nbytes
        return total

    def derived_nbytes(self) -> int:
        total = _arr_nbytes(
            self.weight_t, self._weight_nchw, self._decoded_t, self._wino_u
        )
        if self.encoded is not None:
            total += self.encoded.cached_nbytes
        return total

    def release_derived(self) -> int:
        freed = self.derived_nbytes()
        self.invalidate()
        if self.encoded is not None:
            self.encoded.invalidate_caches()
        return freed

    def clone_with(
        self,
        *,
        use_gather: Optional[bool] = None,
        slab_bytes: Optional[int] = None,
        wino_m: Optional[int] = None,
    ) -> "ConvOp":
        """Fresh unprepared copy with an overridden schedule (tuner probes)."""
        return ConvOp(
            stride=self.stride,
            padding=self.padding,
            kernel=self.kernel,
            c_in=self.c_in,
            c_out=self.c_out,
            tag=self.tag,
            weight=self.weight,
            bias=self.bias,
            encoded=self.encoded,
            relu=self.relu,
            backend=None,
            dtype=self.dtype,
            use_gather=self.use_gather if use_gather is None else use_gather,
            wino_m=self.wino_m if wino_m is None else wino_m,
            slab_bytes=slab_bytes,
        )

    def run(self, x, state, backend):
        if not self._prepared:
            self.prepare()
        override = backend or self.backend
        if override is not None:
            return self._run_via_engine(x, state, override)
        if self.use_gather:
            return self._run_gather(x, state)
        if self.wino_m:
            thunk = self._wino_closure(x, state)
            if thunk is not None:
                return thunk(x)
        return self._run_dense(x, state)

    def make_thunk(self, x, state):
        if self.backend is not None:
            return None
        if not self._prepared:
            self.prepare()
        if self.use_gather:
            return None
        if self.wino_m:
            thunk = self._wino_closure(x, state)
            if thunk is not None:
                return thunk
        return self._dense_thunk(x, state)

    # -- shared geometry ----------------------------------------------
    def _plan(self, x: np.ndarray, state: _ExecState) -> ExecutionPlan:
        n, h, w, c = x.shape
        kh, kw = self.kernel
        key = ("nhwc", (n, h, w, c), (self.c_out, c, kh, kw), self.stride, self.padding)
        return state.plans.get_or_build(
            key,
            lambda: ExecutionPlan.build(
                key, (n, c, h, w), (self.c_out, c, kh, kw), self.stride, self.padding
            ),
        )

    def _slab_rows(self, plan: ExecutionPlan, per_row: int, itemsize: int) -> int:
        oh, _ = plan.out_hw
        # A tuned schedule replaces the budget, not the row count, so the
        # workspace footprint it was measured at holds for every batch.
        budget_bytes = SLAB_BYTES if self.slab_bytes is None else self.slab_bytes
        budget = budget_bytes // max(1, itemsize)
        return max(1, min(oh, budget // max(1, per_row)))

    def _padded_input(self, x: np.ndarray, arena: Arena) -> np.ndarray:
        """Zero-padded input, skipping the copy when the producer already
        wrote into this op's pad buffer interior (halo fusion)."""
        if self.padding <= 0:
            return x
        n, h, w, c = x.shape
        p = self.padding
        buffer = arena.take_filled(
            f"{self.tag}:pad", (n, h + 2 * p, w + 2 * p, c), x.dtype, 0.0
        )
        if x.base is buffer:
            return buffer
        buffer[:, p : p + h, p : p + w, :] = x
        return buffer

    def _store(self, out4: np.ndarray, arena: Arena) -> np.ndarray:
        """Activation hand-off: relu (+copy into the consumer's halo)."""
        if self.halo is not None:
            consumer_tag, p = self.halo
            n, oh, ow, c = out4.shape
            buffer = arena.take_filled(
                f"{consumer_tag}:pad", (n, oh + 2 * p, ow + 2 * p, c), out4.dtype, 0.0
            )
            interior = buffer[:, p : p + oh, p : p + ow, :]
            if self.relu:
                np.maximum(out4, 0.0, out=interior)
            else:
                np.copyto(interior, out4)
            return interior
        if self.relu:
            np.maximum(out4, 0.0, out=out4)
        return out4

    def _finish(self, out4: np.ndarray, arena: Arena) -> np.ndarray:
        """Monolithic-path epilogue hook; QuantConvOp overrides this
        with its requantizing variant, so the Winograd and dense paths
        stay shared between the float and int8 pipelines."""
        return self._store(out4, arena)

    def _operand_weight_t(self) -> np.ndarray:
        """The ``(K[+1], C_out)`` GEMM operand, decoding SPM lazily."""
        if self.weight_t is not None:
            return self.weight_t
        return self._decoded_weight_t()

    # -- dense GEMM path ----------------------------------------------
    def _run_dense(self, x, state):
        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        oh, ow = plan.out_hw
        k = kh * kw * self.c_in
        if self.weight_t is not None:
            weight_t = self.weight_t
        else:
            # SPM conv lowered to decode + dense GEMM.
            weight_t = self._decoded_weight_t()
        gemm_dtype = np.result_type(x.dtype, weight_t.dtype)
        xp = self._padded_input(x, arena)
        out = arena.take(f"{self.tag}:out", (n, oh, ow, self.c_out), gemm_dtype)
        rows = self._slab_rows(plan, n * ow * (k + self.bias_rows), x.dtype.itemsize)
        if rows >= oh:
            # The ones column multiplying the appended bias row is set by
            # take_filled exactly once; im2col rewrites only the first k
            # columns each call.
            cols = arena.take_filled(
                f"{self.tag}:cols", (n * oh * ow, k + self.bias_rows), x.dtype, 1.0
            )
            im2col_nhwc(xp, self.kernel, self.stride, out=cols[:, :k])
            out_mat = out.reshape(n * oh * ow, self.c_out)
            np.matmul(cols, weight_t, out=out_mat)
            return self._finish(out, arena)
        for r0 in range(0, oh, rows):
            r1 = min(r0 + rows, oh)
            x_slab = xp[:, r0 * self.stride : (r1 - 1) * self.stride + kh, :, :]
            cols = arena.take_filled(
                f"{self.tag}:cols",
                (n * (r1 - r0) * ow, k + self.bias_rows),
                x.dtype,
                1.0,
            )
            im2col_nhwc(x_slab, self.kernel, self.stride, out=cols[:, :k])
            tile = arena.take(f"{self.tag}:tile", (len(cols), self.c_out), gemm_dtype)
            np.matmul(cols, weight_t, out=tile)
            if self.relu:
                np.maximum(tile, 0.0, out=tile)
            out[:, r0:r1] = tile.reshape(n, r1 - r0, ow, self.c_out)
        return out

    def _dense_thunk(self, x, state):
        """Prebound monolithic dense GEMM closure (trace executor).

        Binds the pad/cols/out buffers and the GEMM operand once; the
        per-call work is exactly :meth:`_run_dense`'s monolithic branch
        minus every dict lookup and layout decision. Slab-looped
        geometries return None and stay on generic dispatch.
        """
        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        oh, ow = plan.out_hw
        k = kh * kw * self.c_in
        weight_t = self._operand_weight_t()
        gemm_dtype = np.result_type(x.dtype, weight_t.dtype)
        rows = self._slab_rows(plan, n * ow * (k + self.bias_rows), x.dtype.itemsize)
        if rows < oh:
            return None
        out = arena.take(f"{self.tag}:out", (n, oh, ow, self.c_out), gemm_dtype)
        out_mat = out.reshape(n * oh * ow, self.c_out)
        cols = arena.take_filled(
            f"{self.tag}:cols", (n * oh * ow, k + self.bias_rows), x.dtype, 1.0
        )
        cols_k = cols[:, :k]
        kernel, stride = self.kernel, self.stride
        p = self.padding
        if p > 0:
            h, w = x.shape[1], x.shape[2]
            pad = arena.take_filled(
                f"{self.tag}:pad", (n, h + 2 * p, w + 2 * p, self.c_in), x.dtype, 0.0
            )
            interior = pad[:, p : p + h, p : p + w, :]

            def thunk(x_in):
                if x_in.base is not pad:
                    interior[...] = x_in
                im2col_nhwc(pad, kernel, stride, out=cols_k)
                np.matmul(cols, weight_t, out=out_mat)
                return self._finish(out, arena)

        else:

            def thunk(x_in):
                im2col_nhwc(x_in, kernel, stride, out=cols_k)
                np.matmul(cols, weight_t, out=out_mat)
                return self._finish(out, arena)

        return thunk

    # -- Winograd F(m x m, 3x3) path ----------------------------------
    def _wino_operand(self, m: int, dtype) -> np.ndarray:
        """Memoized transformed weights ``U = (G(x)G) W``, ``(f, C_in, C_out)``."""
        f = (m + 2) ** 2
        u = self._wino_u
        if u is None or u.shape[0] != f or u.dtype != np.dtype(dtype):
            k = 9 * self.c_in
            w9 = np.ascontiguousarray(
                self._operand_weight_t()[:k]
            ).reshape(9, self.c_in, self.c_out)
            self._wino_u = wino_weight_transform(w9, m, dtype)
        return self._wino_u

    def _wino_tile(self, out_hw) -> int:
        """Resolve the effective tile for one geometry (and persist it).

        ``wino_m > 0`` is a concrete compile-time choice (the winograd
        pass with known shapes, or the tuner); ``wino_m == -1`` marks a
        statically-eligible conv whose output size was unknown at
        compile time — the static tile rule resolves it here from the
        first execution plan and the result sticks, so describe() and
        serving meta report the tile that actually runs.
        """
        m = self.wino_m
        if m < 0:
            from .winograd import default_tile, eligible_tiles

            tiles = eligible_tiles(
                kernel=self.kernel,
                stride=self.stride,
                out_hw=out_hw,
                c_in=self.c_in,
                backend=self.backend,
                use_gather=self.use_gather,
            )
            m = default_tile(out_hw=out_hw, c_in=self.c_in, tiles=tiles)
            self.wino_m = m
        return m

    def _wino_closure(self, x, state):
        """Build the prebound Winograd executor for ``x``'s geometry.

        One closure serves both entry points: :meth:`run` builds and
        invokes it per call (cheap — a handful of arena lookups), the
        trace executor records it once and replays the tight loop. The
        epilogue goes through :meth:`_finish`, so the same closure
        serves the float pipeline (bias+ReLU) and the quantized one
        (requantize) — the quantized op's integer activation codes are
        widened to the GEMM dtype during the tile-transform copy.
        Returns ``None`` when the auto tile rule resolves to "stay on
        im2col" for this geometry.
        """
        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        oh, ow = plan.out_hw
        m = self._wino_tile((oh, ow))
        if m <= 0:
            return None
        th, tw, f, span = wino_geometry(out_hw=(oh, ow), m=m)
        c, c_out = self.c_in, self.c_out
        h, w = x.shape[1], x.shape[2]
        p = self.padding
        operand = self._operand_weight_t()
        gemm_dtype = np.result_type(x.dtype, operand.dtype)
        _, bt, at = wino_transforms(m, gemm_dtype)
        u = self._wino_operand(m, gemm_dtype)
        bias = operand[9 * c] if self.bias_rows else None
        # Tile extraction needs m*t + 2 rows/cols; for even outputs this
        # is exactly the conv's own padded extent, so the halo-fused
        # ``:pad`` buffer doubles as the tile source. Odd outputs read
        # one partial tile past it, from a wider zero-filled buffer.
        span_h, span_w = m * th + 2, m * tw + 2
        ph, pw = max(h + 2 * p, span_h), max(w + 2 * p, span_w)
        if p > 0 and ph == h + 2 * p and pw == w + 2 * p:
            pad = arena.take_filled(f"{self.tag}:pad", (n, ph, pw, c), x.dtype, 0.0)
        else:
            pad = arena.take_filled(f"{self.tag}:wpad", (n, ph, pw, c), x.dtype, 0.0)
        interior = pad[:, p : p + h, p : p + w, :]
        sn, sh, sw, sc = pad.strides
        tiles = np.lib.stride_tricks.as_strided(
            pad, (n, th, tw, span, span, c), (sn, m * sh, m * sw, sh, sw, sc)
        )
        tile_src = tiles.transpose(3, 4, 0, 1, 2, 5)
        pcount = n * th * tw
        d = arena.take(f"{self.tag}:wd", (f, pcount, c), gemm_dtype)
        d6 = d.reshape(span, span, n, th, tw, c)
        v = arena.take(f"{self.tag}:wv", (f, pcount, c), gemm_dtype)
        mmat = arena.take(f"{self.tag}:wm", (f, pcount, c_out), gemm_dtype)
        ybuf = arena.take(f"{self.tag}:wy", (m * m, pcount * c_out), gemm_dtype)
        exact = m * th == oh and m * tw == ow
        if exact:
            out_full = arena.take(f"{self.tag}:out", (n, oh, ow, c_out), gemm_dtype)
            out = out_full
        else:
            out_full = arena.take(
                f"{self.tag}:wout", (n, m * th, m * tw, c_out), gemm_dtype
            )
            out = out_full[:, :oh, :ow, :]
        out6 = out_full.reshape(n, th, m, tw, m, c_out)
        y_src = ybuf.reshape(m, m, n, th, tw, c_out).transpose(2, 3, 0, 4, 1, 5)
        d2 = d.reshape(f, pcount * c)
        v2 = v.reshape(f, pcount * c)
        m2 = mmat.reshape(f, pcount * c_out)

        def thunk(x_in):
            if x_in.base is not pad:
                interior[...] = x_in
            d6[...] = tile_src
            np.matmul(bt, d2, out=v2)
            np.matmul(v, u, out=mmat)
            np.matmul(at, m2, out=ybuf)
            out6[...] = y_src
            if bias is not None:
                np.add(out, bias, out=out)
            return self._finish(out, arena)

        return thunk

    def schedule_kind(self) -> str:
        """Per-layer schedule annotation for describe()/serving meta."""
        if self.backend:
            return f"backend:{self.backend}"
        if self.use_gather:
            return "gather"
        if self.wino_m > 0:
            return f"winograd{self.wino_m}"
        if self.wino_m < 0:
            return "winograd-auto"
        if self.slab_bytes is not None:
            return "slab"
        return "im2col"

    # -- grouped-contraction SPM path ---------------------------------
    def _run_gather(self, x, state):
        arena = state.arena
        plan = self._plan(x, state)
        n = plan.batch
        kh, kw = self.kernel
        k2 = kh * kw
        oh, ow = plan.out_hw
        gather = self.encoded.gather_plan()
        grouped = self.encoded.grouped_weight_matrix()  # (|P|*C_in*n, C_out)
        gemm_dtype = np.result_type(x.dtype, grouped.dtype)
        xp = self._padded_input(x, arena)
        out = arena.take(f"{self.tag}:out", (n, oh, ow, self.c_out), gemm_dtype)
        per_row = n * ow * max(k2 * self.c_in, grouped.shape[0])
        rows = self._slab_rows(plan, per_row, x.dtype.itemsize)
        for r0 in range(0, oh, rows):
            r1 = min(r0 + rows, oh)
            x_slab = xp[:, r0 * self.stride : (r1 - 1) * self.stride + kh, :, :]
            cols, _ = im2col_nhwc(
                x_slab,
                self.kernel,
                self.stride,
                out=arena.take(
                    f"{self.tag}:cols", (n * (r1 - r0) * ow, k2 * self.c_in), x.dtype
                ),
            )
            # NHWC columns are (position, channel); gather the |P| pattern
            # position sets, then order (code, channel, slot) to match the
            # grouped weight matrix's layout.
            cols_r = cols.reshape(-1, k2, self.c_in)
            gathered = cols_r[:, gather.positions_by_code, :]  # (W, |P|, n, C)
            a_mat = gathered.transpose(0, 1, 3, 2).reshape(len(cols_r), -1)
            tile = a_mat @ grouped
            self.epilogue.apply(tile)
            out[:, r0:r1] = tile.reshape(n, r1 - r0, ow, self.c_out)
        return out

    # -- forced-backend fallback through the engine -------------------
    def _dense_weight_nchw(self) -> Optional[np.ndarray]:
        if self._weight_nchw is None and self.weight_t is not None:
            kh, kw = self.kernel
            k = kh * kw * self.c_in
            self._weight_nchw = np.ascontiguousarray(
                self.weight_t[:k].T.reshape(self.c_out, kh, kw, self.c_in).transpose(
                    0, 3, 1, 2
                )
            )
        return self._weight_nchw

    def _decoded_weight_t(self) -> np.ndarray:
        """Memoized NHWC GEMM weight decoded from an SPM encoding (bias
        row appended when the layer carries one, as for dense)."""
        if self._decoded_t is None:
            decoded = (
                self.encoded.decoded_weight()
                .transpose(0, 2, 3, 1)
                .reshape(self.c_out, -1)
                .T
            )
            if self.bias_rows:
                decoded = np.vstack(
                    [decoded, self.epilogue.bias.astype(decoded.dtype)[None, :]]
                )
            self._decoded_t = np.ascontiguousarray(decoded)
        return self._decoded_t

    def _run_via_engine(self, x, state, override):
        arena = state.arena
        n, h, w, c = x.shape
        x_nchw = arena.take(f"{self.tag}:nchw-in", (n, c, h, w), x.dtype)
        x_nchw[...] = x.transpose(0, 3, 1, 2)
        out_nchw = dispatch(
            x_nchw,
            self._dense_weight_nchw() if self.encoded is None else None,
            encoded=self.encoded,
            stride=self.stride,
            padding=self.padding,
            backend=override,
            cache=state.plans,
            workspace={"arena": arena, "tag": f"{self.tag}:engine"},
            epilogue=self.epilogue,
        )
        n2, c2, oh, ow = out_nchw.shape
        out = arena.take(f"{self.tag}:nhwc-out", (n2, oh, ow, c2), out_nchw.dtype)
        out[...] = out_nchw.transpose(0, 2, 3, 1)
        return out

    def describe(self) -> str:
        kind = "spm-conv" if self.encoded is not None else "conv"
        fused = []
        if self.bias is not None:
            fused.append("bias")
        if self.relu:
            fused.append("relu")
        label = f"{kind}" + (f"+{'+'.join(fused)}" if fused else "")
        if self.schedule is not None:
            label += f" [{self.schedule.describe()}]"
        elif self.wino_m > 0:
            # Auto markers (wino_m < 0) stay silent until the first
            # execution plan resolves them to a concrete tile.
            label += f" [winograd{self.wino_m}]"
        return label


@dataclass
class LinearOp(_InferenceOp):
    """Affine head with optional fused ReLU (outputs are small)."""

    weight: np.ndarray
    bias: Optional[np.ndarray]
    tag: str
    relu: bool = False

    layout_in = "flat"
    layout_out = "flat"

    def run(self, x, state, backend):
        out = x @ self.weight.T
        if self.bias is not None:
            out += self.bias.astype(out.dtype, copy=False)
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def make_thunk(self, x, state):
        weight_t = np.ascontiguousarray(self.weight.T)
        out_dtype = np.result_type(x.dtype, weight_t.dtype)
        out = state.arena.take(
            f"{self.tag}:out", (x.shape[0], self.weight.shape[0]), out_dtype
        )
        bias = None if self.bias is None else self.bias.astype(out_dtype, copy=False)
        relu = self.relu

        def thunk(x_in):
            np.matmul(x_in, weight_t, out=out)
            if bias is not None:
                np.add(out, bias, out=out)
            if relu:
                np.maximum(out, 0.0, out=out)
            return out

        return thunk

    def param_nbytes(self) -> int:
        return _arr_nbytes(self.weight, self.bias)

    def describe(self) -> str:
        return "linear+relu" if self.relu else "linear"


@dataclass
class BatchNormOp(_InferenceOp):
    """Standalone eval-mode BN (only when no conv precedes it)."""

    scale: np.ndarray  # (C,), the BN's folded affine map
    shift: np.ndarray
    tag: str
    relu: bool = False
    dtype: Optional[object] = None
    scale4: Optional[np.ndarray] = field(default=None, repr=False)
    shift4: Optional[np.ndarray] = field(default=None, repr=False)

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    def prepare(self) -> None:
        """Build the broadcastable channels-last affine operands."""
        if self.scale4 is None:
            c = self.scale.shape[0]
            self.scale4 = _cast(self.scale, self.dtype).reshape(1, 1, 1, c)
            self.shift4 = _cast(self.shift, self.dtype).reshape(1, 1, 1, c)

    def param_nbytes(self) -> int:
        return _arr_nbytes(self.scale, self.shift)

    def derived_nbytes(self) -> int:
        return _arr_nbytes(self.scale4, self.shift4)

    def release_derived(self) -> int:
        freed = self.derived_nbytes()
        self.scale4 = None
        self.shift4 = None
        return freed

    def run(self, x, state, backend):
        self.prepare()
        out = state.arena.take(
            f"{self.tag}:out", x.shape, np.result_type(x.dtype, self.scale4.dtype)
        )
        np.multiply(x, self.scale4, out=out)
        out += self.shift4
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def describe(self) -> str:
        return "batchnorm+relu" if self.relu else "batchnorm"


@dataclass
class ReluOp(_InferenceOp):
    """Standalone ReLU into an op-private arena buffer (never aliases)."""

    tag: str

    def run(self, x, state, backend):
        out = state.arena.take(f"{self.tag}:out", x.shape, x.dtype)
        # Integer zero: ReLU inside a quantized region runs on int8
        # activation codes, where a float 0.0 would force a promotion.
        return np.maximum(x, 0, out=out)

    def make_thunk(self, x, state):
        out = state.arena.take(f"{self.tag}:out", x.shape, x.dtype)

        def thunk(x_in):
            return np.maximum(x_in, 0, out=out)

        return thunk

    def describe(self) -> str:
        return "relu"


def _pool_out(arena: Arena, tag: str, halo, shape, dtype) -> np.ndarray:
    """Pool output buffer — the consumer's pad interior under halo fusion."""
    if halo is not None:
        consumer_tag, p = halo
        n, oh, ow, c = shape
        buffer = arena.take_filled(
            f"{consumer_tag}:pad", (n, oh + 2 * p, ow + 2 * p, c), dtype, 0.0
        )
        return buffer[:, p : p + oh, p : p + ow, :]
    return arena.take(f"{tag}:out", shape, dtype)


@dataclass
class MaxPoolOp(_InferenceOp):
    kernel: int
    stride: int
    padding: int
    tag: str
    halo: Optional[Tuple[str, int]] = None

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    def run(self, x, state, backend):
        if self.padding > 0:
            # Identity-of-max borders so padded cells never win; filled
            # once at allocation, only the interior is copied per call.
            # (int8 activation codes get the integer minimum: -inf does
            # not cast.)
            n, h, w, c = x.shape
            p = self.padding
            lowest = (
                -np.inf
                if np.issubdtype(x.dtype, np.floating)
                else np.iinfo(x.dtype).min
            )
            buf = state.arena.take_filled(
                f"{self.tag}:pad", (n, h + 2 * p, w + 2 * p, c), x.dtype, lowest
            )
            buf[:, p : p + h, p : p + w, :] = x
            x = buf
        windows = pool_windows_nhwc(x, self.kernel, self.stride)
        n, oh, ow = windows.shape[:3]
        out = _pool_out(
            state.arena, self.tag, self.halo, (n, oh, ow, x.shape[3]), x.dtype
        )
        return np.max(windows, axis=(3, 4), out=out)

    def make_thunk(self, x, state):
        if self.padding > 0:
            return None
        # The window view binds to the producer's (stable) arena buffer;
        # if a later call ever hands a different array, fall back to the
        # generic path rather than reading stale data.
        windows = pool_windows_nhwc(x, self.kernel, self.stride)
        n, oh, ow = windows.shape[:3]
        out = _pool_out(
            state.arena, self.tag, self.halo, (n, oh, ow, x.shape[3]), x.dtype
        )
        bound = x

        def thunk(x_in):
            if x_in is not bound:
                return self.run(x_in, state, None)
            return np.max(windows, axis=(3, 4), out=out)

        return thunk

    def describe(self) -> str:
        return f"maxpool{self.kernel}"


@dataclass
class AvgPoolOp(_InferenceOp):
    kernel: int
    stride: int
    tag: str
    halo: Optional[Tuple[str, int]] = None

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    def run(self, x, state, backend):
        windows = pool_windows_nhwc(x, self.kernel, self.stride)
        n, oh, ow = windows.shape[:3]
        out = _pool_out(
            state.arena, self.tag, self.halo, (n, oh, ow, x.shape[3]), x.dtype
        )
        return np.mean(windows, axis=(3, 4), out=out)

    def describe(self) -> str:
        return f"avgpool{self.kernel}"


@dataclass
class GlobalAvgPoolOp(_InferenceOp):
    tag: str

    layout_in = "nhwc"
    layout_out = "flat"
    spatial_only = True

    def run(self, x, state, backend):
        return x.mean(axis=(1, 2))  # NHWC -> (N, C)

    def make_thunk(self, x, state):
        if not np.issubdtype(x.dtype, np.floating):
            return None  # integer means promote; keep run()'s semantics
        n, h, w, c = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, c), x.dtype)

        def thunk(x_in):
            return np.mean(x_in, axis=(1, 2), out=out)

        return thunk

    def describe(self) -> str:
        return "globalavgpool"


@dataclass
class FlattenOp(_InferenceOp):
    """NCHW-ordered flatten of a channels-last activation."""

    tag: str

    layout_in = "nhwc"
    layout_out = "flat"
    spatial_only = True

    def run(self, x, state, backend):
        n, h, w, c = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, c * h * w), x.dtype)
        out.reshape(n, c, h, w)[...] = x.transpose(0, 3, 1, 2)
        return out

    def make_thunk(self, x, state):
        n, h, w, c = x.shape
        out = state.arena.take(f"{self.tag}:out", (n, c * h * w), x.dtype)
        out_nchw = out.reshape(n, c, h, w)

        def thunk(x_in):
            out_nchw[...] = x_in.transpose(0, 3, 1, 2)
            return out

        return thunk

    def describe(self) -> str:
        return "flatten"


@dataclass
class ResidualOp(_InferenceOp):
    """Body + shortcut with the post-add ReLU applied in place.

    The two branches are nested :class:`~repro.runtime.ir.Graph`
    pipelines (both consuming this op's input edge), so graph passes
    recurse into them like any other ops; execution reads the cached
    linearisation.
    """

    body_graph: Graph
    shortcut_graph: Graph
    relu: bool
    tag: str

    layout_in = "nhwc"
    layout_out = "nhwc"
    spatial_only = True

    @property
    def body(self) -> List[_InferenceOp]:
        """The body branch's executable ops, in order."""
        return self.body_graph.op_list()

    @property
    def shortcut(self) -> List[_InferenceOp]:
        """The shortcut branch's executable ops, in order."""
        return self.shortcut_graph.op_list()

    def run(self, x, state, backend):
        out = x
        for op in self.body:
            out = op.run(out, state, backend)
        identity = x
        for op in self.shortcut:
            identity = op.run(identity, state, backend)
        if out is x:  # degenerate empty body: do not mutate the input
            out = x.copy()
        np.add(out, identity, out=out)
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def describe(self) -> str:
        body = " ".join(op.describe() for op in self.body)
        down = " ".join(op.describe() for op in self.shortcut) or "identity"
        return f"residual[{body} | {down}]"


@dataclass
class ModuleOp(_InferenceOp):
    """Fallback: run an unlowered module under no_grad in eval mode."""

    module: nn.Module
    tag: str

    # The lowerer converts spatial activations to NCHW before a fallback
    # module runs; the contract stays "any"/"same" because flat inputs
    # pass through untouched.
    layout_in = "any"
    layout_out = "same"

    def run(self, x, state, backend):
        was_training = self.module.training
        self.module.eval()
        try:
            with nn.no_grad():
                return self.module(nn.Tensor(x, dtype=None)).data
        finally:
            self.module.train(was_training)

    def param_nbytes(self) -> int:
        return sum(int(p.data.nbytes) for p in self.module.parameters())

    def describe(self) -> str:
        return f"module:{type(self.module).__name__}"


# ---------------------------------------------------------------------
# The compiled model
# ---------------------------------------------------------------------
class CompiledModel:
    """Flat inference pipeline produced by :func:`compile_model`.

    Callable on ``(N, C, H, W)`` numpy batches; inputs are cast once to
    the compile dtype, converted to channels-last at entry, and outputs
    are returned in the eager model's layout. Execution resources
    (buffer arena) are thread-local, so one compiled model serves
    micro-batches from a thread pool concurrently
    (``predict(..., workers=N)``); the plan cache is shared and
    lock-protected.

    ``graph`` holds the pass-transformed IR the op list was linearised
    from, ``passes`` the :class:`~repro.runtime.passes.PassRecord` trace
    of what each pass did, ``quantization``/``tuning`` the optional
    reports — all rendered by :meth:`describe`.
    """

    def __init__(
        self,
        graph: Union[Graph, List[_InferenceOp]],
        dtype,
        source: str = "",
        passes: Optional[List[object]] = None,
    ) -> None:
        if isinstance(graph, Graph):
            self.graph: Optional[Graph] = graph
            self.ops = list(graph.op_list())
        else:
            self.graph = None
            self.ops = list(graph)
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.source = source
        self.plans = PlanCache()
        #: Per-pass trace (:class:`~repro.runtime.passes.PassRecord`).
        self.passes = list(passes or [])
        #: :class:`~repro.runtime.quant.QuantizationReport` when the
        #: pipeline was compiled with ``quantize=``, else ``None``.
        self.quantization = None
        #: :class:`~repro.runtime.tune.TuningReport` when compiled with
        #: ``tune=``, else ``None``.
        self.tuning = None
        self._local = threading.local()
        # Every thread's _ExecState, so cross-thread byte accounting and
        # workspace release (fleet demotion) can reach arenas that the
        # creating threads own. Guarded by _states_lock; the hot path
        # only appends once per thread.
        self._states: List[_ExecState] = []
        self._states_lock = threading.Lock()
        # Observed (input tail, input dtype) -> (output tail, output
        # dtype), recorded by __call__ and served by output_geometry()
        # so empty-batch calls never need a probe forward.
        self._geometry: dict = {}

    # -- resources -----------------------------------------------------
    def _state(self) -> _ExecState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ExecState(arena=Arena(), plans=self.plans)
            self._local.state = state
            with self._states_lock:
                self._states.append(state)
        return state

    @property
    def arena(self) -> Arena:
        """The calling thread's buffer arena (stats/introspection)."""
        return self._state().arena

    # -- byte accounting & residency -----------------------------------
    def iter_ops(self):
        """Every executable op, recursing into residual branches."""

        def walk(ops):
            for op in ops:
                yield op
                if isinstance(op, ResidualOp):
                    yield from walk(op.body)
                    yield from walk(op.shortcut)

        yield from walk(self.ops)

    def memory_report(self) -> dict:
        """Byte breakdown of what this pipeline holds resident.

        ``parameters`` (weights/codes — survives demotion and eviction),
        ``derived`` (rebuildable GEMM operands and memoized gathers),
        ``plans`` (plan-cache workspace charge) and ``arenas`` (scratch
        buffers across every thread that has executed the model).
        """
        parameters = 0
        derived = 0
        for op in self.iter_ops():
            parameters += op.param_nbytes()
            derived += op.derived_nbytes()
        with self._states_lock:
            states = list(self._states)
        return {
            "parameters": parameters,
            "derived": derived,
            "plans": self.plans.nbytes,
            "arenas": sum(state.arena.nbytes for state in states),
            "threads": len(states),
        }

    def resident_nbytes(self) -> int:
        """Reclaimable resident bytes: derived + plans + arenas (the
        fleet ledger's charge for this tenant; parameters excluded —
        they are the price of keeping the model loaded at all)."""
        report = self.memory_report()
        return report["derived"] + report["plans"] + report["arenas"]

    def release_workspaces(self) -> int:
        """Demotion: drop plan cache + every thread's arena buffers.

        Parameters and derived GEMM operands stay, so the next call is a
        warm re-plan (allocate + plan, no re-prepare). Returns bytes
        freed. Safe only while no request is executing (the fleet's
        residency manager serialises this against flushes).
        """
        freed = self.plans.clear()
        with self._states_lock:
            states = list(self._states)
        for state in states:
            state.traces.clear()  # thunks pin the arena buffers
            freed += state.arena.release()
        return freed

    def release_derived(self) -> int:
        """Eviction: additionally drop rebuildable derived op state.

        The lowered IR, pass trace and source parameters all stay — the
        next call re-runs :meth:`prepare` lazily (a warm finalize), never
        a recompile. Returns bytes freed.
        """
        freed = 0
        with self._states_lock:
            states = list(self._states)
        for state in states:
            state.traces.clear()  # thunks pin the released GEMM operands
        for op in self.iter_ops():
            freed += op.release_derived()
        return freed

    def prepare_ops(self) -> None:
        """Eagerly rebuild derived op state (the finalize pass's work) —
        re-promotion after eviction calls this off the hot path."""
        for op in self.iter_ops():
            prepare = getattr(op, "prepare", None)
            if prepare is not None:
                prepare()

    # -- execution -----------------------------------------------------
    def __call__(self, x: np.ndarray, *, backend: Optional[str] = None) -> np.ndarray:
        """Run the compiled pipeline over a batch.

        ``backend`` forces every conv onto one engine backend, mirroring
        ``predict(..., backend=...)`` on eager models.
        """
        x = np.asarray(x)
        if x.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) inputs, got shape {x.shape}")
        geometry_key = (x.shape[1:], np.dtype(x.dtype))
        if self.dtype is not None and x.dtype != self.dtype:
            x = x.astype(self.dtype)
        state = self._state()
        if backend is None and trace_enabled():
            out = self._run_traced(x, state)
        else:
            out = x
            for op in self.ops:
                out = op.run(out, state, backend)
        if geometry_key not in self._geometry:
            self._geometry[geometry_key] = (out.shape[1:], np.dtype(out.dtype))
        # The last op's result may be a view into an arena buffer that the
        # next call will overwrite; hand back an owned copy (outputs are
        # head-sized, so this is cheap).
        return np.array(out, copy=True)

    def _run_traced(self, x: np.ndarray, state: _ExecState) -> np.ndarray:
        """Steady-state executor: replay the recorded thunk list.

        The first call at a given (shape, dtype) records the trace — it
        runs each op once through :meth:`_InferenceOp.make_thunk` (or a
        generic ``op.run`` wrapper), capturing prebound buffers, GEMM
        operands and frozen layout decisions. Replays are a tight loop
        over plain callables: no plan-cache lookups, no arena dict hits,
        no per-op branching. Recording doubles as execution, so the
        first call costs the same as dispatch.
        """
        key = (x.shape, np.dtype(x.dtype))
        thunks = state.traces.get(key)
        if thunks is not None:
            out = x
            for thunk in thunks:
                out = thunk(out)
            return out
        thunks = []
        out = x
        for op in self.ops:
            thunk = op.make_thunk(out, state)
            if thunk is None:

                def thunk(x_in, _op=op, _state=state):
                    return _op.run(x_in, _state, None)

            out = thunk(out)
            thunks.append(thunk)
        state.traces[key] = thunks
        return out

    def executor_kind(self) -> str:
        """``"trace"`` when steady-state calls replay recorded thunks,
        ``"dispatch"`` under ``REPRO_TRACE=0``."""
        return "trace" if trace_enabled() else "dispatch"

    def schedule_summary(self) -> List[dict]:
        """Per-layer schedule kinds for describe()/serving meta.

        One row per conv-like op: the lowering tag, op class, the
        chosen schedule kind (``winograd4``/``winograd2``/``im2col``/
        ``gather``/``slab``/``backend:*``) and, for quantized convs,
        which int8 GEMM kernel serves the layer.
        """
        rows = []
        for op in self.iter_ops():
            kind = getattr(op, "schedule_kind", None)
            if kind is None:
                continue
            row = {"tag": op.tag, "op": type(op).__name__, "kind": kind()}
            int8_kernel = getattr(op, "int8_kernel", None)
            if int8_kernel is not None:
                row["int8_kernel"] = int8_kernel
            rows.append(row)
        return rows

    def output_geometry(self, input_tail, input_dtype):
        """``(output shape tail, dtype)`` for ``(N,) + input_tail`` inputs.

        Answers from geometry a real call already recorded, else derives
        it analytically by walking the op list's shape rules — no probe
        forward, no arena allocation, no worker-pool dispatch, which is
        what lets ``predict`` answer empty batches for free. Returns
        ``None`` when the pipeline's geometry cannot be derived
        statically (a :class:`ModuleOp` fallback hides its spatial
        behaviour, and ``dtype=None`` pipelines track parameter dtypes
        the walk does not model) — callers fall back to the probe.
        """
        key = (tuple(input_tail), np.dtype(input_dtype))
        entry = self._geometry.get(key)
        if entry is not None:
            return entry
        if self.dtype is None:
            return None
        tail = self._walk_geometry(self.ops, key[0])
        if tail is None:
            return None
        entry = (tail, self.dtype)
        self._geometry[key] = entry
        return entry

    @staticmethod
    def _walk_geometry(ops, tail):
        """Symbolically push a shape tail through ``ops`` (None = punt)."""
        from ..nn.functional import conv_output_size
        from .quant import DequantizeOp, QuantizeOp

        for op in ops:
            if isinstance(op, ToNHWC):
                if len(tail) != 3:
                    return None
                c, h, w = tail
                tail = (h, w, c)
            elif isinstance(op, ToNCHW):
                if len(tail) != 3:
                    return None
                h, w, c = tail
                tail = (c, h, w)
            elif isinstance(op, ConvOp):  # QuantConvOp included
                if len(tail) != 3:
                    return None
                h, w, _ = tail
                oh = conv_output_size(h, op.kernel[0], op.stride, op.padding)
                ow = conv_output_size(w, op.kernel[1], op.stride, op.padding)
                tail = (oh, ow, op.c_out)
            elif isinstance(op, MaxPoolOp):
                if len(tail) != 3:
                    return None
                h, w, c = tail
                oh = conv_output_size(h, op.kernel, op.stride, op.padding)
                ow = conv_output_size(w, op.kernel, op.stride, op.padding)
                tail = (oh, ow, c)
            elif isinstance(op, AvgPoolOp):
                if len(tail) != 3:
                    return None
                h, w, c = tail
                oh = conv_output_size(h, op.kernel, op.stride, 0)
                ow = conv_output_size(w, op.kernel, op.stride, 0)
                tail = (oh, ow, c)
            elif isinstance(op, GlobalAvgPoolOp):
                if len(tail) != 3:
                    return None
                tail = (tail[2],)
            elif isinstance(op, FlattenOp):
                if len(tail) != 3:
                    return None
                h, w, c = tail
                tail = (c * h * w,)
            elif isinstance(op, LinearOp):
                tail = (op.weight.shape[0],)
            elif isinstance(op, ResidualOp):
                tail = CompiledModel._walk_geometry(op.body, tail)
                if tail is None:
                    return None
            elif isinstance(op, (BatchNormOp, ReluOp, QuantizeOp, DequantizeOp)):
                pass  # shape-preserving
            else:  # ModuleOp or an op this walk does not know
                return None
        return tail

    def describe(self) -> str:
        """The pass-annotated pipeline: trace, ops, and reports."""
        header = f"CompiledModel({self.source or 'model'}, dtype={self.dtype})"
        lines = [header, f"  executor: {self.executor_kind()}"]
        if self.passes:
            trace = " -> ".join(record.name for record in self.passes)
            lines.append(f"  passes: {trace}")
            for record in self.passes:
                if record.note:
                    lines.append(f"    {record.name}: {record.note}")
        lines.extend(f"  {i}: {op.describe()}" for i, op in enumerate(self.ops))
        if self.tuning is not None:
            lines.append("  tuning: " + self.tuning.describe().replace("\n", "\n  "))
        if self.quantization is not None:
            lines.append("  quantization: " + self.quantization.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CompiledModel(ops={len(self.ops)}, dtype={self.dtype}, "
            f"source={self.source!r})"
        )


def compile_model(
    model: nn.Module,
    dtype=np.float32,
    *,
    quantize=None,
    calibration: Optional[np.ndarray] = None,
    tune: Optional[str] = None,
    input_shape: Optional[Sequence[int]] = None,
    tuning_cache=None,
    winograd: bool = True,
    passes: Optional[Sequence[object]] = None,
) -> CompiledModel:
    """Lower ``model`` to a :class:`CompiledModel` inference pipeline.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`. Known structures (Sequential
        chains, modules exposing ``lowering_sequence`` /
        ``lowering_branches``) lower to fused channels-last ops; anything
        else runs via a :class:`ModuleOp` fallback, so compilation always
        succeeds.
    dtype:
        Inference dtype, cast once at compile time. ``np.float32``
        (default) halves GEMM memory traffic vs the float64 training
        graph; ``None`` keeps each parameter's own dtype.
    quantize:
        Lower eligible convolutions to the int8 execution path
        (:mod:`repro.runtime.quant`): ``"int8"``/``True`` for the
        defaults, an int bit width, or a full
        :class:`~repro.runtime.quant.QuantizationConfig`. Requires
        ``calibration``.
    calibration:
        Small ``(N, C, H, W)`` batch used to calibrate activation scales
        when ``quantize`` is given.
    tune:
        Pick per-layer conv schedules instead of the static heuristic:
        ``"cost"`` ranks candidates with the analytic accelerator cost
        model (:func:`repro.arch.conv_layer_cost`, zero measurement);
        ``"measure"`` additionally times the top candidates and persists
        the winners in the :class:`~repro.runtime.tune.TuningCache`
        (``~/.cache/repro-tune.json``), so later compiles of the same
        geometry skip the measurement. Requires ``input_shape``.
    input_shape:
        ``(C, H, W)`` of one input image — needed by ``tune`` to derive
        per-layer geometry (``predict``/serving/CLI fill it in).
    tuning_cache:
        Explicit :class:`~repro.runtime.tune.TuningCache` (tests,
        hermetic builds); defaults to the process-wide persisted one.
    winograd:
        Let the ``winograd`` pass mark eligible 3x3/stride-1 convs for
        the F(m x m, 3x3) fast-convolution path (default). ``False``
        keeps every conv on its im2col/gather GEMM — the reference
        schedule benchmarks and equivalence tests compare against.
    passes:
        Override the pass list (names or
        :class:`~repro.runtime.passes.Pass` objects); the default is the
        standard sequence with ``tune``/``quantize`` included when
        requested. Ordering constraints are validated either way.

    Notes
    -----
    The compiled pipeline snapshots weights, masks, BN statistics and SPM
    encodings *at compile time* — mutating the source model afterwards
    (fine-tuning, ``load_state_dict``) requires compiling again.
    """
    from .passes import CompileContext, PassManager, default_passes
    from .quant import resolve_quantization

    config = resolve_quantization(quantize) if quantize is not None else None
    if config is not None and calibration is None:
        raise ValueError(
            "compile_model(quantize=...) needs a calibration= batch "
            "to derive activation scales from"
        )
    ctx = CompileContext(
        model=model,
        dtype=np.dtype(dtype) if dtype is not None else None,
        quantize=config,
        calibration=calibration,
        tune=tune,
        input_shape=tuple(input_shape) if input_shape is not None else None,
        tuning_cache=tuning_cache,
        winograd=winograd,
    )
    graph = Graph(TensorMeta("nchw"), name=type(model).__name__)
    manager = PassManager(passes if passes is not None else default_passes(ctx))
    manager.run(graph, ctx)
    compiled = CompiledModel(
        graph, dtype=dtype, source=type(model).__name__, passes=manager.records
    )
    compiled.quantization = ctx.quant_report
    compiled.tuning = ctx.tuning_report
    return compiled
