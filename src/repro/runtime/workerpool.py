"""Process-pool executor serving compiled models past the GIL.

:class:`WorkerPool` is the multi-process counterpart of the thread pool
behind ``predict(workers=N)``: N forked inference workers, each holding
a private :class:`~repro.runtime.arena.Arena` and plan cache but all
mapping the *same* :class:`~repro.runtime.shm.SharedModelImage` —
weights, SPM grouped matrices and int8 code bundles exist once in
physical memory. Chunks travel over per-worker SPSC
:class:`~repro.runtime.shm.TensorRing` pairs (struct-packed headers +
raw activation bytes; no pickling on the hot path), with
``multiprocessing.Semaphore`` doorbells so neither side burns CPU
polling — which matters as much on a one-core CI box as on a 32-core
server.

The pool satisfies the ``predict(executor=)`` seam: ``predict``
recognises :attr:`WorkerPool.is_process_pool` and routes chunks through
:meth:`run_chunks` instead of ``ThreadPoolExecutor.map`` (a closure
cannot cross a process boundary; a tensor record can). Worker death is
survivable: rings are lock-free so a crash never strands a lock, the
collector notices the dead process, redispatches its in-flight chunks
to survivors once, and fails them with :class:`WorkerCrashed` only when
no capacity remains.

Lifecycle discipline: the creating process owns both shared segments
(image + rings) and unlinks them in :meth:`shutdown`; a
``weakref.finalize`` backstop unlinks on interpreter exit, so neither a
forgotten ``shutdown()`` nor a crashed worker leaks ``/dev/shm``
entries.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import struct
import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .shm import (
    KIND_CONTROL,
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESULT,
    KIND_STOP,
    RingTimeout,
    SharedModelImage,
    TensorRing,
    attach_segment,
    create_segment,
    destroy_segment,
    pack_tensor,
    unpack_tensor,
)

__all__ = ["WorkerPool", "WorkerCrashed", "BrokenWorkerPool", "DEFAULT_RING_BYTES"]

#: Default per-direction ring capacity. Sized for a handful of
#: float64 serving chunks; :class:`~repro.serving.server.ModelServer`
#: derives a tighter figure from its batch geometry.
DEFAULT_RING_BYTES = 4 * 2**20

#: Per-worker live-counter slot in the pool segment (written by the
#: worker, read lock-free by the router's /stats snapshots and the
#: supervisor's wedge detector). The heartbeat is a CLOCK_MONOTONIC
#: nanosecond stamp — shared across processes on Linux, so the router
#: can age it against its own ``time.monotonic_ns()``.
_STATS_SLOT = struct.Struct("<QQQQ")  # chunks, images, busy_ns, heartbeat_ns
_STATS_SLOT_BYTES = 64


class WorkerCrashed(RuntimeError):
    """An inference worker died with chunks in flight."""


class BrokenWorkerPool(RuntimeError):
    """The pool is shut down (or lost every worker) and cannot serve."""


@dataclass
class _Pending:
    """One in-flight chunk awaiting its result record."""

    future: Future
    chunk: np.ndarray
    worker: int
    enqueued: float
    redispatched: bool = False


@dataclass
class _WorkerHandle:
    process: multiprocessing.process.BaseProcess
    request_ring: TensorRing
    response_ring: TensorRing
    doorbell: object  # ctx.Semaphore(0) waking the worker's request loop
    ring_lock: threading.Lock = field(default_factory=threading.Lock)
    alive: bool = True
    #: Deliberately stopped via retire_worker() — not a crash, so the
    #: supervisor must not resurrect it.
    retired: bool = False
    #: Set when the worker's KIND_CONTROL ready record has been read
    #: (initial startup and every respawn).
    ready: threading.Event = field(default_factory=threading.Event)
    attach: dict = field(default_factory=dict)
    #: (completion stamp, enqueue->response-write seconds), recent window
    completions: "deque" = field(default_factory=lambda: deque(maxlen=512))


def _wait_for_data(ring: TensorRing, doorbell, timeout: float, should_abort=None) -> bool:
    """Sleep on the doorbell semaphore until the ring has data (or timeout).

    The doorbell is a raw ``multiprocessing.Semaphore`` rather than an
    ``Event`` deliberately: Event wraps a lock that a SIGKILLed peer can
    die holding (deadlocking every other waiter forever), while
    ``sem_post``/``sem_timedwait`` are single atomic syscalls with no
    lock to orphan. Producers post once per record *after* writing it,
    so an acquired permit implies visible data; permits drained out of
    order only cost a spurious loop iteration.
    """
    deadline = time.monotonic() + timeout
    while True:
        if ring.has_data():
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        doorbell.acquire(timeout=min(0.05, remaining))
        if should_abort is not None:
            should_abort()


# ---------------------------------------------------------------------
# Worker process entry point (module-level: importable under spawn)
# ---------------------------------------------------------------------
def _worker_main(
    image_name: str,
    segment_name: str,
    worker_id: int,
    ring_bytes: int,
    cpus: int,
    doorbell,
    response_doorbell,
    parent_pid: int,
) -> None:
    # The router handles Ctrl-C for the whole tree; workers exit via the
    # STOP record (or by noticing the router is gone).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Inherit the router's resolved tuning-cache CPU key, so any compile
    # a worker ever performs agrees with the router's cache entries
    # instead of re-probing under a different affinity view.
    os.environ["REPRO_TUNE_CPUS"] = str(cpus)

    segment = attach_segment(segment_name)
    request_ring, response_ring, stats_offset = _pool_layout(
        segment.buf, worker_id, ring_bytes
    )
    image = SharedModelImage.attach(image_name)
    model = image.model()

    def router_gone() -> None:
        if os.getppid() != parent_pid:
            raise SystemExit(0)

    ready = {
        "worker": worker_id,
        "pid": os.getpid(),
        "attach": image.attach_stats.snapshot(),
    }
    response_ring.write(KIND_CONTROL, [pickle.dumps(ready)], timeout=30.0)
    response_doorbell.release()

    chunks = images = busy_ns = 0

    def beat() -> None:
        # Heartbeat + counters in one 32-byte write. Stamped every loop
        # iteration (idle ticks included) and right before compute, so a
        # wedged worker — SIGSTOPped, deadlocked, stuck in a syscall —
        # shows a stale stamp within one supervisor interval while a
        # merely busy worker shows the stamp of its compute start.
        _STATS_SLOT.pack_into(
            segment.buf, stats_offset, chunks, images, busy_ns,
            time.monotonic_ns(),
        )

    beat()
    try:
        while True:
            if not _wait_for_data(request_ring, doorbell, 0.25):
                router_gone()
                beat()
                continue
            item = request_ring.try_read()
            if item is None:
                continue
            kind, payload, record = item
            if kind == KIND_STOP:
                request_ring.consume(record)
                # Drop every ring view still referenced by frame locals
                # so the finally-close below can release the mapping.
                del item, payload
                return
            if kind != KIND_REQUEST:
                request_ring.consume(record)
                continue
            req_id, enqueued, _, x = unpack_tensor(payload)
            received = time.monotonic()
            beat()
            try:
                out = model(x)  # owned copy; the ring slot is free after this
            except BaseException as error:  # noqa: BLE001 - forwarded
                request_ring.consume(record)
                response_ring.write(
                    KIND_ERROR,
                    [pickle.dumps((req_id, f"{type(error).__name__}: {error}"))],
                    timeout=30.0,
                    should_abort=router_gone,
                )
                response_doorbell.release()
                continue
            request_ring.consume(record)
            done = time.monotonic()
            chunks += 1
            images += x.shape[0]
            busy_ns += int((done - received) * 1e9)
            beat()
            header, data = pack_tensor(req_id, enqueued, time.monotonic(), out)
            response_ring.write(
                KIND_RESULT, [header, data], timeout=60.0, should_abort=router_gone
            )
            response_doorbell.release()
            # Release this iteration's ring views eagerly: a STOP (or
            # crash) next iteration must not find exported pointers.
            del item, payload, x
    finally:
        image.close()
        try:
            segment.close()
        except BufferError:  # pragma: no cover - stray view; process exits
            pass


def _pool_layout(
    buf, worker_id: int, ring_bytes: int
) -> Tuple[TensorRing, TensorRing, int]:
    """One worker's (request ring, response ring, stats offset)."""
    per_worker = 2 * TensorRing.footprint(ring_bytes) + _STATS_SLOT_BYTES
    base = worker_id * per_worker
    request_ring = TensorRing(buf, base, ring_bytes)
    response_ring = TensorRing(buf, base + TensorRing.footprint(ring_bytes), ring_bytes)
    stats_offset = base + 2 * TensorRing.footprint(ring_bytes)
    return request_ring, response_ring, stats_offset


def _cleanup_segments(names: Sequence[str]) -> None:
    """Finalizer: unlink any pool segments the owner never shut down."""
    from multiprocessing import shared_memory

    for name in names:
        try:
            leaked = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        destroy_segment(leaked)


class WorkerPool:
    """N inference processes serving one shared compiled model.

    Parameters
    ----------
    compiled:
        The :class:`~repro.runtime.compile.CompiledModel` to serve. Its
        parameters are exported to a :class:`SharedModelImage` once;
        workers attach read-only views (never copies — see
        :meth:`stats_snapshot`'s attach counters).
    procs:
        Worker process count (>= 1).
    ring_bytes:
        Per-direction ring capacity per worker. Must hold the largest
        single chunk (tensor bytes + a small header); serving derives
        this from its batch geometry.
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (no re-import, instant start), else ``"spawn"``. The
        worker entry point is spawn-safe either way.
    """

    #: predict()'s executor seam keys on this instead of the type, so
    #: tests can substitute doubles.
    is_process_pool = True

    def __init__(
        self,
        compiled,
        procs: int,
        *,
        ring_bytes: int = DEFAULT_RING_BYTES,
        start_method: Optional[str] = None,
        ready_timeout: float = 60.0,
    ) -> None:
        from .tune import effective_cpu_count

        if procs < 1:
            raise ValueError("procs must be >= 1")
        ring_bytes = (int(ring_bytes) + 7) // 8 * 8
        self.compiled = compiled
        self.procs = procs
        self.ring_bytes = ring_bytes
        self._closed = False
        self._lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._foreground = 0
        self._pending: Dict[int, _Pending] = {}
        self._outstanding: List[int] = [0] * procs
        self._next_id = 0
        self._submit_timeout = 30.0
        #: Optional crash hook (set by the serving supervisor): called
        #: with ``(worker_id, exitcode, orphaned, redispatched)`` from
        #: the collector thread whenever a worker death is detected.
        #: Must not block — it runs inside the response-drain sweep.
        self.on_worker_death = None

        self.image = SharedModelImage.export(compiled)
        per_worker = 2 * TensorRing.footprint(ring_bytes) + _STATS_SLOT_BYTES
        self._segment = create_segment("pool", procs * per_worker)

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        # Kept for respawn_worker(): resurrected workers must start the
        # same way (and share the same doorbell semantics) as originals.
        self._ctx = ctx
        self._response_doorbell = ctx.Semaphore(0)
        cpus = effective_cpu_count()
        self._cpus = cpus

        self._workers: List[_WorkerHandle] = []
        try:
            for worker_id in range(procs):
                request_ring, response_ring, _ = _pool_layout(
                    self._segment.buf, worker_id, ring_bytes
                )
                doorbell = ctx.Semaphore(0)
                process = self._spawn_process(worker_id, doorbell)
                self._workers.append(
                    _WorkerHandle(
                        process=process,
                        request_ring=request_ring,
                        response_ring=response_ring,
                        doorbell=doorbell,
                    )
                )
            self._await_ready(ready_timeout)
        except BaseException:
            self._teardown_processes()
            destroy_segment(self._segment)
            self.image.close()
            self.image.unlink()
            raise

        # Unlink-on-exit backstop; shutdown() detaches it after doing
        # the same work deliberately.
        self._finalizer = weakref.finalize(
            self, _cleanup_segments, (self._segment.name, self.image.name)
        )
        self._collector_stop = False
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-pool-collector", daemon=True
        )
        self._collector.start()

    # -- startup -------------------------------------------------------
    def _spawn_process(self, worker_id: int, doorbell) -> multiprocessing.process.BaseProcess:
        """Start one worker process on worker ``worker_id``'s rings."""
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self.image.name,
                self._segment.name,
                worker_id,
                self.ring_bytes,
                self._cpus,
                doorbell,
                self._response_doorbell,
                os.getpid(),
            ),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        return process

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            self._await_worker_ready(worker, deadline - time.monotonic())

    def _await_worker_ready(self, worker: _WorkerHandle, timeout: float) -> None:
        """Block until ``worker``'s KIND_CONTROL ready record arrives.

        The record may be consumed by this thread's own drain sweep or —
        during a respawn, when the pool is already live — by the
        background collector; either path lands in
        :meth:`_handle_record`, which stores the attach info and sets
        ``worker.ready``.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        while not worker.ready.is_set():
            if not worker.process.is_alive():
                raise BrokenWorkerPool(
                    f"worker {worker.process.name} died during startup "
                    f"(exitcode {worker.process.exitcode})"
                )
            if time.monotonic() > deadline:
                raise BrokenWorkerPool(
                    f"worker {worker.process.name} not ready after {timeout:.0f}s"
                )
            _wait_for_data(worker.response_ring, self._response_doorbell, 0.05)
            self._drain_responses(liveness=False)

    # -- dispatch ------------------------------------------------------
    def _pick_worker(self) -> int:
        alive = [
            (self._outstanding[i], i)
            for i, w in enumerate(self._workers)
            if w.alive
        ]
        if not alive:
            raise BrokenWorkerPool("no live workers remain")
        return min(alive)[1]

    def _submit(self, chunk: np.ndarray, worker_id: Optional[int] = None) -> Future:
        chunk = np.ascontiguousarray(chunk)
        future: Future = Future()
        future.set_running_or_notify_cancel()
        with self._lock:
            if self._closed:
                raise BrokenWorkerPool("worker pool is shut down")
            target = self._pick_worker() if worker_id is None else worker_id
            req_id = self._next_id
            self._next_id += 1
            enqueued = time.monotonic()
            self._pending[req_id] = _Pending(
                future=future, chunk=chunk, worker=target, enqueued=enqueued
            )
            self._outstanding[target] += 1
        worker = self._workers[target]
        header, data = pack_tensor(req_id, enqueued, 0.0, chunk)
        try:
            with worker.ring_lock:
                worker.request_ring.write(
                    KIND_REQUEST,
                    [header, data],
                    timeout=self._submit_timeout,
                    should_abort=lambda: self._abort_if_dead(worker),
                )
            worker.doorbell.release()
        except BaseException as error:
            with self._lock:
                if self._pending.pop(req_id, None) is not None:
                    self._outstanding[target] -= 1
            if isinstance(error, WorkerCrashed) and worker_id is None:
                # The chosen worker died before accepting the chunk; any
                # survivor can take it instead.
                return self._submit(chunk)
            raise
        return future

    def _abort_if_dead(self, worker: _WorkerHandle) -> None:
        if not worker.process.is_alive():
            raise WorkerCrashed(
                f"{worker.process.name} died (exitcode {worker.process.exitcode})"
            )

    def submit_chunk(self, chunk: np.ndarray) -> Future:
        """Dispatch one ``(n, ...)`` chunk; future resolves to its output."""
        inner = self._submit(chunk)
        outer: Future = Future()
        outer.set_running_or_notify_cancel()

        def _unwrap(done: Future) -> None:
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
            else:
                outer.set_result(done.result()[0])

        inner.add_done_callback(_unwrap)
        return outer

    def run_chunks(
        self,
        chunks: Sequence[np.ndarray],
        chunk_seconds: Optional[List[float]] = None,
    ) -> List[np.ndarray]:
        """Run every chunk across the pool; outputs in submission order.

        ``chunk_seconds`` (when given, one slot per chunk) is filled
        with each chunk's enqueue→response-write time as measured on the
        shared monotonic clock — ring transit and worker compute both
        included.
        """
        futures = [self._submit(chunk) for chunk in chunks]
        if chunk_seconds is not None:
            chunk_seconds.extend(0.0 for _ in range(len(futures) - len(chunk_seconds)))
        # Foreground collection: this thread drains the response rings
        # itself instead of sleeping behind the background collector —
        # the worker's doorbell release wakes the thread that actually
        # wants the result, saving a full thread hop per chunk (which is
        # most of the ring overhead on a 1-core host).
        with self._lock:
            self._foreground += 1
        try:
            outputs = []
            for index, future in enumerate(futures):
                while not future.done():
                    # Block first: the token released right after the
                    # response write is the expected wake, and sweeping
                    # before the worker could possibly have answered
                    # only burns an empty pass over every ring. Skip
                    # the per-worker waitpid liveness probes unless the
                    # wait timed out — a crashed worker never releases
                    # the doorbell, so the timeout path (and the 10 ms
                    # polling collector) is where death shows up.
                    woken = self._response_doorbell.acquire(timeout=0.005)
                    self._drain_responses(liveness=not woken)
                output, rtt = future.result()
                if chunk_seconds is not None:
                    chunk_seconds[index] = rtt
                outputs.append(output)
        finally:
            with self._lock:
                self._foreground -= 1
        return outputs

    def warmup(self, geometries: Sequence[Tuple[int, ...]]) -> None:
        """Run a zero chunk of every geometry on *every* worker.

        Targeted dispatch (not least-loaded), so each worker's private
        plan cache and arena are warm for every chunk geometry serving
        will produce — the first real request never pays plan building
        in any process.
        """
        futures = []
        for shape in dict.fromkeys(tuple(g) for g in geometries):
            zeros = np.zeros(shape)
            for worker_id, worker in enumerate(self._workers):
                if worker.alive:
                    futures.append(self._submit(zeros, worker_id=worker_id))
        for future in futures:
            future.result()

    # -- dynamic membership (supervision) ------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`shutdown` has run (pool can no longer serve)."""
        return self._closed

    @property
    def alive_workers(self) -> int:
        """Workers currently accepting dispatch (not dead, not retired)."""
        return sum(1 for w in self._workers if w.alive)

    def worker_health(self) -> Dict[int, dict]:
        """Supervisor-facing liveness view, one row per worker slot.

        ``heartbeat_age_s`` ages the worker's shared-clock heartbeat
        stamp against the router's monotonic clock; a live-but-wedged
        worker (SIGSTOP, deadlock) shows a growing age while
        ``process_alive`` stays true — the signal :class:`~repro.serving.supervisor.Supervisor`
        uses to kill and resurrect it. ``alive`` is the *dispatch* flag:
        False once a crash was observed (or the worker was retired),
        which is the supervisor's cue to respawn.
        """
        health: Dict[int, dict] = {}
        now_ns = time.monotonic_ns()
        with self._lock:
            closed = self._closed
            outstanding = list(self._outstanding)
        for worker_id, worker in enumerate(self._workers):
            heartbeat_age = None
            if not closed:
                _, _, stats_offset = _pool_layout(
                    self._segment.buf, worker_id, self.ring_bytes
                )
                _, _, _, beat_ns = _STATS_SLOT.unpack_from(
                    self._segment.buf, stats_offset
                )
                if beat_ns:
                    heartbeat_age = max(0.0, (now_ns - beat_ns) / 1e9)
            health[worker_id] = {
                "alive": worker.alive,
                "retired": worker.retired,
                "process_alive": worker.process.is_alive(),
                "pid": worker.process.pid,
                "exitcode": worker.process.exitcode,
                "outstanding": outstanding[worker_id],
                "heartbeat_age_s": heartbeat_age,
            }
        return health

    def kill_worker(self, worker_id: int, sig: int = signal.SIGKILL) -> None:
        """Send ``sig`` to one worker process (wedge recovery, chaos tests).

        The death is *not* processed here — the collector's next sweep
        notices it, redispatches in-flight chunks and fires the
        ``on_worker_death`` hook exactly as for an external kill.
        """
        worker = self._workers[worker_id]
        if worker.process.pid is not None and worker.process.is_alive():
            os.kill(worker.process.pid, sig)

    def retire_worker(self, worker_id: int, timeout: float = 10.0) -> None:
        """Gracefully remove one worker from the dispatch set.

        New chunks stop routing to it immediately; its in-flight chunks
        drain normally, then it receives a STOP record and exits. The
        slot stays in the pool (``retired``) and can be brought back
        with :meth:`respawn_worker`.
        """
        with self._lock:
            if self._closed:
                raise BrokenWorkerPool("worker pool is shut down")
            worker = self._workers[worker_id]
            if not worker.alive:
                raise ValueError(f"worker {worker_id} is not serving")
            if self.alive_workers <= 1:
                raise ValueError(
                    "cannot retire the last live worker (shut the pool down "
                    "instead)"
                )
            worker.alive = False
            worker.retired = True
        deadline = time.monotonic() + timeout
        while (
            self._outstanding[worker_id] > 0
            and worker.process.is_alive()
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        if worker.process.is_alive():
            try:
                with worker.ring_lock:
                    worker.request_ring.write(KIND_STOP, [], timeout=1.0)
                worker.doorbell.release()
            except (RingTimeout, ValueError):
                worker.process.terminate()
        worker.process.join(max(0.1, deadline - time.monotonic()))
        if worker.process.is_alive():  # pragma: no cover - last resort
            worker.process.kill()
            worker.process.join(1.0)

    def respawn_worker(self, worker_id: int, *, ready_timeout: float = 60.0) -> int:
        """Resurrect a dead or retired worker slot; returns the new pid.

        The replacement process attaches the *same*
        :class:`SharedModelImage` and serves over the slot's existing
        rings, which are drained of any responses the old worker wrote
        before dying and then reset — the old process can no longer
        touch them (it is dead and joined), so the reset is race-free.
        Requires the slot's crash to have been observed already
        (``alive`` False): in-flight chunk replay happens at death
        detection, not here.
        """
        with self._lock:
            if self._closed:
                raise BrokenWorkerPool("worker pool is shut down")
            old = self._workers[worker_id]
        if old.alive:
            # Maybe the death simply has not been swept yet; one probe
            # sweep settles it (and replays the orphaned chunks).
            self._drain_responses()
            if old.alive:
                raise ValueError(f"worker {worker_id} is still serving")
        old.process.join(5.0)
        if old.process.is_alive():
            raise ValueError(
                f"worker {worker_id} process (pid {old.process.pid}) has not "
                f"exited; kill it before respawning"
            )
        with self._drain_lock, old.ring_lock:
            # Collect responses the dead worker finished before it died
            # (they are still valid results), then reset both rings and
            # the stats slot to a clean state for the replacement.
            while True:
                item = old.response_ring.try_read()
                if item is None:
                    break
                self._handle_record(worker_id, old, item)
            old.request_ring.head = 0
            old.request_ring.tail = 0
            old.response_ring.head = 0
            old.response_ring.tail = 0
            _, _, stats_offset = _pool_layout(
                self._segment.buf, worker_id, self.ring_bytes
            )
            _STATS_SLOT.pack_into(self._segment.buf, stats_offset, 0, 0, 0, 0)
            with self._lock:
                self._outstanding[worker_id] = 0
            doorbell = self._ctx.Semaphore(0)
            handle = _WorkerHandle(
                process=self._spawn_process(worker_id, doorbell),
                request_ring=old.request_ring,
                response_ring=old.response_ring,
                doorbell=doorbell,
                alive=False,  # no dispatch until the ready handshake lands
            )
            self._workers[worker_id] = handle
        try:
            self._await_worker_ready(handle, ready_timeout)
        except BaseException:
            handle.process.terminate()
            handle.process.join(1.0)
            raise
        handle.alive = True
        return handle.process.pid

    # -- result collection ---------------------------------------------
    def _drain_responses(self, liveness: bool = True) -> bool:
        """One sweep over every response ring (+ death detection).

        Serialised by ``_drain_lock`` so the background collector and a
        foreground waiter never double-read a ring. Returns whether any
        record was consumed or a death was handled. ``liveness=False``
        skips the per-worker ``waitpid`` probes — the foreground hot
        path passes it when a doorbell token proved a worker just
        responded; crash detection stays with the timeout path and the
        polling collector.
        """
        progressed = False
        with self._drain_lock:
            for worker_id, worker in enumerate(self._workers):
                while True:
                    item = worker.response_ring.try_read()
                    if item is None:
                        break
                    progressed = True
                    self._handle_record(worker_id, worker, item)
                if liveness and worker.alive and not worker.process.is_alive():
                    self._on_worker_death(worker_id, worker)
                    progressed = True
        return progressed

    def _collect_loop(self) -> None:
        # The background collector is a polling backstop, NOT a doorbell
        # consumer: if it blocked on the response doorbell, a worker's
        # release would race between it and a foreground run_chunks()
        # waiter — and whenever the collector won, the foreground thread
        # would sleep out its whole timeout while the collector relayed
        # the result through an extra thread hop. Leaving the doorbell
        # exclusively to foreground waiters keeps the hot path at one
        # wakeup; the 10 ms poll only bounds latency for async
        # submit_chunk() futures and crash detection.
        while not self._collector_stop:
            if not self._foreground:
                # Eat tokens nobody is waiting for so they cannot pile
                # up and turn a later foreground wait into a spin.
                while self._response_doorbell.acquire(block=False):
                    pass
            self._drain_responses()
            time.sleep(0.01)

    def _handle_record(
        self, worker_id: int, worker: _WorkerHandle, item: Tuple[int, memoryview, int]
    ) -> None:
        kind, payload, record = item
        if kind == KIND_RESULT:
            req_id, enqueued, done, view = unpack_tensor(payload)
            output = np.array(view, copy=True)
            del view, payload
            worker.response_ring.consume(record)
            rtt = max(0.0, done - enqueued)
            worker.completions.append((time.perf_counter(), rtt))
            self._resolve(req_id, worker_id, result=(output, rtt))
        elif kind == KIND_ERROR:
            req_id, message = pickle.loads(bytes(payload))
            worker.response_ring.consume(record)
            self._resolve(
                req_id, worker_id, error=RuntimeError(f"worker {worker_id}: {message}")
            )
        elif kind == KIND_CONTROL:
            # Ready handshake (initial startup or a supervisor respawn).
            worker.attach = pickle.loads(bytes(payload))
            worker.response_ring.consume(record)
            worker.ready.set()
        else:  # stray record
            worker.response_ring.consume(record)

    def _resolve(self, req_id, worker_id, result=None, error=None) -> None:
        with self._lock:
            pending = self._pending.pop(req_id, None)
            if pending is not None:
                self._outstanding[pending.worker] -= 1
        if pending is None:
            return
        if error is not None:
            pending.future.set_exception(error)
        else:
            pending.future.set_result(result)

    def _on_worker_death(self, worker_id: int, worker: _WorkerHandle) -> None:
        worker.alive = False
        with self._lock:
            orphaned = [
                (req_id, p)
                for req_id, p in self._pending.items()
                if p.worker == worker_id
            ]
            for req_id, pending in orphaned:
                del self._pending[req_id]
                self._outstanding[worker_id] -= 1
        crash = WorkerCrashed(
            f"{worker.process.name} died (exitcode {worker.process.exitcode}) "
            f"with {len(orphaned)} chunk(s) in flight"
        )
        redispatched = 0
        for _, pending in orphaned:
            if pending.redispatched:
                pending.future.set_exception(crash)
                continue
            # One retry on a survivor: transient single-worker deaths
            # (OOM kill, operator SIGTERM) stay invisible to callers.
            try:
                replacement = self._submit(pending.chunk)
            except BaseException:  # noqa: BLE001 - no capacity left
                pending.future.set_exception(crash)
                continue
            redispatched += 1
            with self._lock:
                for req_id, entry in self._pending.items():
                    if entry.future is replacement:
                        entry.future = pending.future
                        entry.redispatched = True
                        break
                else:
                    replacement.add_done_callback(
                        _forward_future(pending.future)
                    )
        callback = self.on_worker_death
        if callback is not None:
            try:
                callback(
                    worker_id, worker.process.exitcode, len(orphaned), redispatched
                )
            except Exception:  # noqa: BLE001 - a hook must not kill the drain
                pass

    # -- observability -------------------------------------------------
    def stats_snapshot(self) -> dict:
        """JSON-ready per-worker view for ``/stats``'s ``workers`` block.

        Safe to call after :meth:`shutdown` — the shared segment is gone
        then, so the live ring/counter fields read as zero while the
        per-worker completion windows and attach counters (router-side
        state) stay intact.
        """
        per_worker = {}
        now = time.perf_counter()
        segment_buf = None if self._closed else self._segment.buf
        for worker_id, worker in enumerate(self._workers):
            if segment_buf is not None:
                _, _, stats_offset = _pool_layout(
                    segment_buf, worker_id, self.ring_bytes
                )
                chunks, images, busy_ns, _ = _STATS_SLOT.unpack_from(
                    segment_buf, stats_offset
                )
                ring = {
                    "request_used": worker.request_ring.used_bytes,
                    "response_used": worker.response_ring.used_bytes,
                    "capacity": self.ring_bytes,
                }
            else:
                chunks = images = busy_ns = 0
                ring = {"request_used": 0, "response_used": 0,
                        "capacity": self.ring_bytes}
            window = list(worker.completions)
            recent = [stamp for stamp, _ in window if now - stamp <= 60.0]
            span = (recent[-1] - recent[0]) if len(recent) >= 2 else 0.0
            rtts = [rtt for _, rtt in window]
            per_worker[str(worker_id)] = {
                "alive": worker.alive and worker.process.is_alive(),
                "pid": worker.process.pid,
                "chunks": chunks,
                "images": images,
                "busy_seconds": round(busy_ns / 1e9, 4),
                "requests_per_second": round(
                    (len(recent) - 1) / span if span > 0 else 0.0, 2
                ),
                "rtt_p50_ms": round(float(np.median(rtts)) * 1e3, 3) if rtts else 0.0,
                "outstanding": self._outstanding[worker_id],
                "ring": ring,
                "attach": worker.attach.get("attach", {}),
            }
        stats = self.image.attach_stats
        return {
            "procs": self.procs,
            "alive": sum(1 for w in self._workers if w.alive),
            "image": {
                "segment": self.image.name,
                "arrays": stats.arrays,
                "bytes": stats.nbytes,
                "attached_total": sum(
                    w.attach.get("attach", {}).get("attached", 0)
                    for w in self._workers
                ),
                "copied_total": sum(
                    w.attach.get("attach", {}).get("copied", 0)
                    for w in self._workers
                ),
            },
            "per_worker": per_worker,
        }

    # -- lifecycle -----------------------------------------------------
    def _teardown_processes(self, timeout: float = 5.0) -> None:
        for worker in self._workers:
            if worker.process.is_alive():
                try:
                    with worker.ring_lock:
                        worker.request_ring.write(KIND_STOP, [], timeout=0.2)
                    worker.doorbell.release()
                except (RingTimeout, ValueError):
                    pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.process.join(max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(1.0)
            worker.alive = False

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers, fail leftover futures, unlink both segments."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._teardown_processes(timeout)
        self._collector_stop = True
        self._response_doorbell.release()
        collector = getattr(self, "_collector", None)
        if collector is not None and collector.is_alive():
            collector.join(timeout)
        with self._lock:
            leftover = list(self._pending.values())
            self._pending.clear()
        for pending in leftover:
            pending.future.set_exception(BrokenWorkerPool("worker pool shut down"))
        destroy_segment(self._segment)
        self.image.close()
        self.image.unlink()
        finalizer = getattr(self, "_finalizer", None)
        if finalizer is not None:
            finalizer.detach()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        alive = sum(1 for w in self._workers if w.alive)
        return (
            f"WorkerPool(procs={self.procs}, alive={alive}, "
            f"ring_bytes={self.ring_bytes}, closed={self._closed})"
        )


def _forward_future(target: Future):
    def _done(done: Future) -> None:
        error = done.exception()
        if error is not None:
            target.set_exception(error)
        else:
            target.set_result(done.result())

    return _done
