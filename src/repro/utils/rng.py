"""Deterministic random number generation helpers.

Every experiment in this reproduction takes an integer seed and derives all
randomness from ``numpy.random.Generator`` objects created here, so benches
and EXPERIMENTS.md are bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["seeded_rng", "spawn_rngs"]


def seeded_rng(seed: int) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so streams are statistically independent —
    used to give each layer / worker its own stream.
    """
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
