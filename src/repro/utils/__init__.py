"""Shared utilities: seeded RNG management, timing and logging."""

from .rng import seeded_rng, spawn_rngs
from .timing import Timer

__all__ = ["seeded_rng", "spawn_rngs", "Timer"]
