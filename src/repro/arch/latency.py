"""Per-inference latency and energy (Sec. IV-E, derived quantities).

Combines the analytic cycle model with the clock frequency and the
Table IX power to give what a deployment engineer actually asks for:
milliseconds and millijoules per image at each sparsity setting.

Two granularities:

- **Whole network** — :func:`inference_cost` /
  :func:`inference_cost_sweep` (the paper's Sec. IV-E numbers), now
  aggregated from the per-layer view below.
- **Single layer** — :class:`LayerCost` / :func:`conv_layer_cost`: a
  roofline of one convolution executed as a GEMM of a given contraction
  width (MAC-slot compute cycles vs DRAM-interface memory cycles).
  :func:`inference_cost_by_layer` exposes the paper model layer by
  layer. The runtime's schedule tuner
  (:mod:`repro.runtime.tune`) consults :func:`conv_layer_cost` to rank
  candidate per-layer schedules — dense GEMM vs native SPM gather —
  without measuring anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.config import PCNNConfig
from ..models.flops import ModelProfile
from .config import ArchConfig
from .energy import PAPER_TECH, TechnologyProfile
from .simulator import simulate_network_analytic

__all__ = [
    "InferenceCost",
    "LayerCost",
    "conv_layer_cost",
    "inference_cost",
    "inference_cost_by_layer",
    "inference_cost_sweep",
]


@dataclass(frozen=True)
class LayerCost:
    """Roofline cost of one convolution layer on the modelled machine.

    ``compute_cycles`` charges the GEMM's multiply-accumulates against
    the architecture's MAC slots; ``memory_cycles`` charges the bytes it
    moves (operands, output, any gathered intermediates) against the
    DRAM interface width. The layer runs at the slower of the two.
    """

    macs: float
    compute_cycles: float
    memory_cycles: float
    bytes_moved: float
    frequency_hz: float
    power_mw: float

    @property
    def cycles(self) -> float:
        """Roofline cycles: ``max(compute, memory)``."""
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def latency_ms(self) -> float:
        """Layer latency at the modelled clock, in milliseconds."""
        return self.cycles / self.frequency_hz * 1e3

    @property
    def energy_mj(self) -> float:
        """Layer energy at the Table IX power, in millijoules."""
        return self.latency_ms * 1e-3 * self.power_mw * 1e-3


def conv_layer_cost(
    *,
    out_hw: Tuple[int, int],
    c_in: int,
    c_out: int,
    kernel_size: int,
    batch: int = 1,
    contraction_width: Optional[int] = None,
    extra_bytes: float = 0.0,
    itemsize: int = 4,
    activation_density: float = 1.0,
    winograd_tile: int = 0,
    arch: Optional[ArchConfig] = None,
    tech: Optional[TechnologyProfile] = None,
) -> LayerCost:
    """Analytic cost of one conv executed as a GEMM.

    Parameters
    ----------
    contraction_width:
        Columns each output element contracts over. Defaults to the
        dense ``k² · C_in``; a pattern-gather execution passes its
        ``|P| · n · C_in`` width, the hardware's effectual view passes
        ``n · C_in``.
    extra_bytes:
        Additional memory traffic the execution strategy implies (e.g.
        the gathered A matrix a grouped contraction materialises).
    activation_density:
        Fraction of activations that are non-zero (the hardware skips
        zeros; software GEMMs pass 1.0).
    winograd_tile:
        Cost the layer as a Winograd F(m x m, 3x3) execution instead of
        an im2col GEMM (``m`` = 2 or 4). The element-wise products
        become ``(m+2)²`` GEMMs of width ``C_in`` over the tile grid,
        and the input/inverse transforms are charged as the dense
        matrix products the runtime actually performs — so the roofline
        reflects the real arithmetic trade, not the textbook
        multiplication count alone.
    """
    arch = arch or ArchConfig()
    tech = tech or PAPER_TECH
    oh, ow = out_hw
    windows = batch * oh * ow
    if winograd_tile:
        m = winograd_tile
        f = (m + 2) ** 2
        tiles = batch * -(-oh // m) * -(-ow // m)
        macs = (
            tiles * f * c_in * c_out  # the (f)-stacked batched GEMM
            + tiles * f * f * c_in  # input transform  V = (B⊗B)ᵀ d
            + tiles * m * m * f * c_out  # inverse transform Y = (A⊗A)ᵀ M
        ) * activation_density
        compute_cycles = macs / arch.total_macs
        bytes_moved = (
            2 * tiles * f * c_in * itemsize  # d and V tile buffers
            + f * c_in * c_out * itemsize  # transformed weights U
            + tiles * f * c_out * itemsize  # Winograd-domain products M
            + windows * c_out * itemsize  # output writeback
            + windows * c_in * itemsize  # input read
            + extra_bytes
        )
        memory_cycles = bytes_moved / arch.dram_bytes_per_cycle
        return LayerCost(
            macs=macs,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            bytes_moved=bytes_moved,
            frequency_hz=arch.frequency_hz,
            power_mw=tech.total_power_mw,
        )
    width = contraction_width if contraction_width is not None else kernel_size**2 * c_in
    macs = windows * c_out * width * activation_density
    compute_cycles = macs / arch.total_macs
    bytes_moved = (
        windows * kernel_size**2 * c_in * itemsize  # input columns
        + width * c_out * itemsize  # GEMM weight operand
        + windows * c_out * itemsize  # output writeback
        + extra_bytes
    )
    memory_cycles = bytes_moved / arch.dram_bytes_per_cycle
    return LayerCost(
        macs=macs,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        bytes_moved=bytes_moved,
        frequency_hz=arch.frequency_hz,
        power_mw=tech.total_power_mw,
    )


@dataclass(frozen=True)
class InferenceCost:
    """Latency/energy of one forward pass on the accelerator."""

    cycles: float
    latency_ms: float
    energy_mj: float
    speedup_vs_dense: float

    @property
    def images_per_second(self) -> float:
        return 1000.0 / self.latency_ms if self.latency_ms > 0 else float("inf")


def inference_cost(
    profile: ModelProfile,
    config: PCNNConfig,
    arch: Optional[ArchConfig] = None,
    tech: Optional[TechnologyProfile] = None,
    activation_density: Optional[float] = None,
) -> InferenceCost:
    """Latency and compute energy per image for one PCNN setting."""
    arch = arch or ArchConfig()
    tech = tech or PAPER_TECH
    sim = simulate_network_analytic(profile, config, arch, activation_density)
    seconds = sim.total_cycles / arch.frequency_hz
    energy_j = seconds * tech.total_power_mw * 1e-3
    return InferenceCost(
        cycles=sim.total_cycles,
        latency_ms=seconds * 1e3,
        energy_mj=energy_j * 1e3,
        speedup_vs_dense=sim.speedup,
    )


def inference_cost_by_layer(
    profile: ModelProfile,
    config: PCNNConfig,
    arch: Optional[ArchConfig] = None,
    tech: Optional[TechnologyProfile] = None,
    activation_density: Optional[float] = None,
) -> Dict[str, InferenceCost]:
    """Per-layer latency/energy breakdown of the Sec. IV-E model.

    The same analytic model as :func:`inference_cost`, exposed layer by
    layer: each entry's latency and energy sum to the whole-network
    figure, and ``speedup_vs_dense`` is that layer's own ratio against
    its dense counterpart on the same datapath.
    """
    arch = arch or ArchConfig()
    tech = tech or PAPER_TECH
    sim = simulate_network_analytic(profile, config, arch, activation_density)
    costs: Dict[str, InferenceCost] = {}
    for name, cycles in sim.layer_cycles.items():
        seconds = cycles / arch.frequency_hz
        dense_cycles = sim.dense_layer_cycles[name]
        costs[name] = InferenceCost(
            cycles=cycles,
            latency_ms=seconds * 1e3,
            energy_mj=seconds * tech.total_power_mw * 1e-3 * 1e3,
            speedup_vs_dense=dense_cycles / cycles if cycles > 0 else float("inf"),
        )
    return costs


def inference_cost_sweep(
    profile: ModelProfile,
    ns=(4, 3, 2, 1),
    arch: Optional[ArchConfig] = None,
    tech: Optional[TechnologyProfile] = None,
) -> Dict[int, InferenceCost]:
    """Latency/energy for a range of uniform kernel sparsities."""
    num_layers = len(profile.prunable())
    return {
        n: inference_cost(profile, PCNNConfig.uniform(n, num_layers), arch, tech) for n in ns
    }
