"""Per-inference latency and energy (Sec. IV-E, derived quantities).

Combines the analytic cycle model with the clock frequency and the
Table IX power to give what a deployment engineer actually asks for:
milliseconds and millijoules per image at each sparsity setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import PCNNConfig
from ..models.flops import ModelProfile
from .config import ArchConfig
from .energy import PAPER_TECH, TechnologyProfile
from .simulator import simulate_network_analytic

__all__ = ["InferenceCost", "inference_cost", "inference_cost_sweep"]


@dataclass(frozen=True)
class InferenceCost:
    """Latency/energy of one forward pass on the accelerator."""

    cycles: float
    latency_ms: float
    energy_mj: float
    speedup_vs_dense: float

    @property
    def images_per_second(self) -> float:
        return 1000.0 / self.latency_ms if self.latency_ms > 0 else float("inf")


def inference_cost(
    profile: ModelProfile,
    config: PCNNConfig,
    arch: Optional[ArchConfig] = None,
    tech: Optional[TechnologyProfile] = None,
    activation_density: Optional[float] = None,
) -> InferenceCost:
    """Latency and compute energy per image for one PCNN setting."""
    arch = arch or ArchConfig()
    tech = tech or PAPER_TECH
    sim = simulate_network_analytic(profile, config, arch, activation_density)
    seconds = sim.total_cycles / arch.frequency_hz
    energy_j = seconds * tech.total_power_mw * 1e-3
    return InferenceCost(
        cycles=sim.total_cycles,
        latency_ms=seconds * 1e3,
        energy_mj=energy_j * 1e3,
        speedup_vs_dense=sim.speedup,
    )


def inference_cost_sweep(
    profile: ModelProfile,
    ns=(4, 3, 2, 1),
    arch: Optional[ArchConfig] = None,
    tech: Optional[TechnologyProfile] = None,
) -> Dict[int, InferenceCost]:
    """Latency/energy for a range of uniform kernel sparsities."""
    num_layers = len(profile.prunable())
    return {
        n: inference_cost(profile, PCNNConfig.uniform(n, num_layers), arch, tech) for n in ns
    }
