"""SRAM tiling scheduler (Sec. III-A's host-controller view).

The 128 KB weight SRAM cannot hold a whole VGG-16 layer, so the host
controller streams weights in tiles and re-reads input activations once
per weight tile (output-stationary over the tile). Because PCNN's kernels
are equal-sized (n weights + one SPM code), tile capacity is a simple
division — and because the per-kernel footprint is smaller than CSC's,
each tile holds more kernels, cutting both the refill count and the
activation re-read traffic. This module quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional

from ..core.compression import CSC_INDEX_BITS, spm_index_bits
from ..core.config import PCNNConfig
from ..models.flops import ConvProfile, ModelProfile
from .config import ArchConfig

__all__ = ["LayerSchedule", "NetworkSchedule", "schedule_layer", "schedule_network"]


@dataclass(frozen=True)
class LayerSchedule:
    """Tiling decision and DRAM traffic for one conv layer."""

    name: str
    kernels: int
    kernels_per_tile: int
    weight_tiles: int
    weight_bytes: float
    input_bytes: float
    output_bytes: float

    @property
    def activation_read_bytes(self) -> float:
        """Input re-read once per weight tile (output-stationary)."""
        return self.weight_tiles * self.input_bytes

    @property
    def dram_bytes(self) -> float:
        """Weights once + tiled input reads + output writeback."""
        return self.weight_bytes + self.activation_read_bytes + self.output_bytes


@dataclass
class NetworkSchedule:
    """Whole-network tiling summary."""

    layers: List[LayerSchedule]

    @property
    def total_dram_bytes(self) -> float:
        return sum(layer.dram_bytes for layer in self.layers)

    @property
    def total_weight_tiles(self) -> int:
        return sum(layer.weight_tiles for layer in self.layers)

    def by_name(self) -> Dict[str, LayerSchedule]:
        return {layer.name: layer for layer in self.layers}


def schedule_layer(
    conv: ConvProfile,
    bits_per_kernel: float,
    arch: Optional[ArchConfig] = None,
    activation_bits: int = 8,
) -> LayerSchedule:
    """Tile one conv layer under the weight-SRAM capacity.

    The per-layer unit :func:`schedule_network` aggregates — exposed so
    callers (benchmarks, the runtime schedule tuner) can cost a single
    layer without building a whole-network profile.
    """
    arch = arch or ArchConfig()
    capacity = max(1, int((arch.weight_sram_bytes * 8) // bits_per_kernel))
    tiles = ceil(conv.kernels / capacity)
    ih, iw = conv.input_hw
    oh, ow = conv.output_hw
    return LayerSchedule(
        name=conv.name,
        kernels=conv.kernels,
        kernels_per_tile=min(capacity, conv.kernels),
        weight_tiles=tiles,
        weight_bytes=conv.kernels * bits_per_kernel / 8.0,
        input_bytes=conv.in_channels * ih * iw * activation_bits / 8.0,
        output_bytes=conv.out_channels * oh * ow * activation_bits / 8.0,
    )


def schedule_network(
    profile: ModelProfile,
    config: Optional[PCNNConfig],
    arch: Optional[ArchConfig] = None,
    index_format: str = "spm",
    activation_bits: int = 8,
) -> NetworkSchedule:
    """Tile every conv layer under the weight-SRAM capacity.

    Parameters
    ----------
    config:
        PCNN config for the prunable layers; ``None`` schedules the dense
        model (9 weights per kernel, no index).
    index_format:
        ``"spm"`` — one SPM code per kernel; ``"csc"`` — 4 index bits per
        non-zero weight (EIE-style), for the comparison benches.
    """
    arch = arch or ArchConfig()
    layers: List[LayerSchedule] = []
    if config is None:
        for conv in profile.convs:
            bits = conv.kernel_size**2 * arch.weight_bits
            layers.append(schedule_layer(conv, bits, arch, activation_bits))
        return NetworkSchedule(layers)

    prunable = {c.name for c in profile.prunable(kernel_size=config.kernel_size)}
    config.validate_for(len(prunable))
    config_iter = iter(config)
    for conv in profile.convs:
        if conv.name in prunable:
            layer_cfg = next(config_iter)
            if index_format == "spm":
                index_bits = spm_index_bits(layer_cfg.num_patterns)
            elif index_format == "csc":
                index_bits = layer_cfg.n * CSC_INDEX_BITS
            else:
                raise ValueError(f"unknown index format {index_format!r}")
            bits = layer_cfg.n * arch.weight_bits + index_bits
        else:
            bits = conv.kernel_size**2 * arch.weight_bits
        layers.append(schedule_layer(conv, bits, arch, activation_bits))
    return NetworkSchedule(layers)
