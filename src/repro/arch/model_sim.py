"""Whole-model cycle-accurate simulation on real activations.

The analytic model (:func:`repro.arch.simulator.simulate_network_analytic`)
assumes an average activation density; this module instead *captures* the
true per-layer inputs of a model's forward pass (post-BN/ReLU/pool, i.e.
the real activation sparsity) and runs each conv through the
cycle-accurate :class:`ConvLayerSimulator`. Feasible for proxy-scale
models; the ``bench_model_cycle_sim`` benchmark uses it to validate the
analytic speedups against a ground-truth schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from .config import ArchConfig
from .pe import MACStats
from .simulator import ConvLayerSimulator

__all__ = ["ConvWorkload", "capture_conv_workloads", "simulate_model_cycles", "ModelCycleReport"]


@dataclass
class ConvWorkload:
    """One conv layer invocation captured from a forward pass."""

    name: str
    x: np.ndarray
    weight: np.ndarray
    stride: int
    padding: int

    @property
    def activation_density(self) -> float:
        return float(np.count_nonzero(self.x)) / self.x.size


class _CaptureConvs:
    """Context manager recording Conv2d inputs/effective weights."""

    def __init__(self, model: nn.Module) -> None:
        self.model = model
        self.workloads: List[ConvWorkload] = []
        self._names = {id(m): n for n, m in model.named_modules()}

    def __enter__(self) -> "_CaptureConvs":
        self._original = nn.Conv2d.forward
        capture = self

        def recording_forward(module: nn.Conv2d, x: nn.Tensor) -> nn.Tensor:
            capture.workloads.append(
                ConvWorkload(
                    name=capture._names.get(id(module), "<anonymous>"),
                    x=x.data.copy(),
                    weight=module.effective_weight().copy(),
                    stride=module.stride,
                    padding=module.padding,
                )
            )
            return capture._original(module, x)

        nn.Conv2d.forward = recording_forward
        return self

    def __exit__(self, *exc) -> None:
        nn.Conv2d.forward = self._original


def capture_conv_workloads(model: nn.Module, x: np.ndarray) -> List[ConvWorkload]:
    """Run a forward pass and capture every conv layer's real workload."""
    model.eval()
    with _CaptureConvs(model) as capture:
        with nn.no_grad():
            model(nn.Tensor(x))
    return capture.workloads


@dataclass
class ModelCycleReport:
    """Cycle-accurate whole-model result."""

    layer_stats: Dict[str, MACStats]
    dense_layer_stats: Dict[str, MACStats]
    activation_densities: Dict[str, float]

    @property
    def total_cycles(self) -> int:
        return sum(s.cycles for s in self.layer_stats.values())

    @property
    def dense_total_cycles(self) -> int:
        return sum(s.cycles for s in self.dense_layer_stats.values())

    @property
    def speedup(self) -> float:
        return self.dense_total_cycles / self.total_cycles

    @property
    def mean_utilization(self) -> float:
        stats = list(self.layer_stats.values())
        return float(np.mean([s.utilization for s in stats])) if stats else 1.0


def simulate_model_cycles(
    model: nn.Module,
    x: np.ndarray,
    arch: Optional[ArchConfig] = None,
) -> ModelCycleReport:
    """Cycle-accurate simulation of every conv layer on real activations.

    The dense counterpart runs the same inputs with an all-ones weight
    mask (the paper's baseline: same datapath, unpruned weights).
    """
    arch = arch or ArchConfig()
    simulator = ConvLayerSimulator(arch)
    workloads = capture_conv_workloads(model, x)
    layer_stats: Dict[str, MACStats] = {}
    dense_stats: Dict[str, MACStats] = {}
    densities: Dict[str, float] = {}
    for workload in workloads:
        mask = (workload.weight != 0).astype(np.float64)
        pruned = simulator.cycle_count(
            workload.x, mask, stride=workload.stride, padding=workload.padding
        )
        dense = simulator.cycle_count(
            workload.x, np.ones_like(mask), stride=workload.stride, padding=workload.padding
        )
        layer_stats[workload.name] = pruned.stats
        dense_stats[workload.name] = dense.stats
        densities[workload.name] = workload.activation_density
    return ModelCycleReport(
        layer_stats=layer_stats,
        dense_layer_stats=dense_stats,
        activation_densities=densities,
    )
