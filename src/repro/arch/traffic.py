"""DRAM traffic model (the paper's Sec. I motivation).

The introduction motivates pruning with the cost of "transfer[ring] large
amounts of data from DRAM to the on-chip memory". This module quantifies
that: per-inference weight and activation traffic for the dense model,
PCNN storage (non-zeros + per-kernel SPM codes), and CSC irregular storage
(non-zeros + per-weight indices), plus a first-order DRAM energy estimate.

Weight traffic scales with exactly the weight+idx compression of Tables
I-III; activation traffic is pruning-invariant, which bounds the
end-to-end traffic saving — a useful honesty check the benches report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.compression import CSC_INDEX_BITS, spm_index_bits
from ..core.config import PCNNConfig
from ..models.flops import ModelProfile

__all__ = ["TrafficReport", "dram_traffic"]

# First-order LPDDR access energy (pJ per byte) for the energy estimate.
DRAM_PJ_PER_BYTE = 80.0


@dataclass
class TrafficReport:
    """Per-inference DRAM traffic in bytes."""

    dense_weight_bytes: float
    pcnn_weight_bytes: float
    csc_weight_bytes: float
    activation_bytes: float

    @property
    def pcnn_weight_saving(self) -> float:
        return self.dense_weight_bytes / self.pcnn_weight_bytes

    @property
    def csc_weight_saving(self) -> float:
        return self.dense_weight_bytes / self.csc_weight_bytes

    @property
    def pcnn_total_saving(self) -> float:
        """End-to-end saving including (pruning-invariant) activations."""
        dense = self.dense_weight_bytes + self.activation_bytes
        pcnn = self.pcnn_weight_bytes + self.activation_bytes
        return dense / pcnn

    def energy_mj(self, which: str = "pcnn") -> float:
        """DRAM transfer energy per inference (millijoules)."""
        weights = {
            "dense": self.dense_weight_bytes,
            "pcnn": self.pcnn_weight_bytes,
            "csc": self.csc_weight_bytes,
        }[which]
        return (weights + self.activation_bytes) * DRAM_PJ_PER_BYTE * 1e-12 * 1e3


def dram_traffic(
    profile: ModelProfile,
    config: PCNNConfig,
    weight_bits: int = 8,
    activation_bits: int = 8,
) -> TrafficReport:
    """Per-inference DRAM traffic for a model under a PCNN config.

    Weights are fetched once per inference (the usual layer-by-layer
    streaming schedule); activations are written once (each layer's
    output) and read once (next layer's input) — counted once here as
    output bytes per layer plus the network input.
    """
    prunable = {c.name for c in profile.prunable(kernel_size=config.kernel_size)}
    config.validate_for(len(prunable))

    dense_weight_bits = 0.0
    pcnn_weight_bits = 0.0
    csc_weight_bits = 0.0
    activation_bits_total = float(
        profile.input_shape[0] * profile.input_shape[1] * profile.input_shape[2]
    ) * activation_bits

    config_iter = iter(config)
    for conv in profile.convs:
        layer_dense = conv.params * weight_bits
        dense_weight_bits += layer_dense
        oh, ow = conv.output_hw
        activation_bits_total += conv.out_channels * oh * ow * activation_bits
        if conv.name in prunable:
            layer_cfg = next(config_iter)
            kept = conv.kernels * layer_cfg.n
            pcnn_weight_bits += kept * weight_bits + conv.kernels * spm_index_bits(
                layer_cfg.num_patterns
            )
            csc_weight_bits += kept * (weight_bits + CSC_INDEX_BITS)
        else:
            pcnn_weight_bits += layer_dense
            csc_weight_bits += layer_dense
    return TrafficReport(
        dense_weight_bytes=dense_weight_bits / 8.0,
        pcnn_weight_bytes=pcnn_weight_bits / 8.0,
        csc_weight_bytes=csc_weight_bits / 8.0,
        activation_bytes=activation_bits_total / 8.0,
    )
