"""SPM Pattern Decoder (Fig. 3a): SPM code -> 9-bit weight mask.

The hardware holds a per-layer *SPM mapping table* (configured by the
Pattern Config block); decoding a kernel's SPM code is one table lookup
producing the 9-bit weight mask that drives the sparsity IO. This module
is the bit-exact software model of that block.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.spm import SPMCodebook

__all__ = ["SPMDecoder"]


class SPMDecoder:
    """Per-layer mapping table from SPM codes to kernel weight masks.

    Parameters
    ----------
    codebook:
        The layer's :class:`repro.core.spm.SPMCodebook` — software twin of
        the mapping table the Pattern Config block loads.
    """

    def __init__(self, codebook: SPMCodebook) -> None:
        self.codebook = codebook
        # Precompute the table: (num_patterns, k*k) of {0,1} bits.
        from ..core.patterns import patterns_to_bit_matrix

        self._table = patterns_to_bit_matrix(
            codebook.patterns, codebook.kernel_size
        ).astype(np.int64)

    @property
    def mask_width(self) -> int:
        """Bits in a decoded weight mask (9 for 3x3 kernels)."""
        return self.codebook.kernel_size**2

    @property
    def table_bits(self) -> int:
        """Storage cost of the mapping table itself (entries x mask width)."""
        return len(self.codebook) * self.mask_width

    def decode(self, code: int) -> np.ndarray:
        """Weight mask (length k*k, {0,1}) for one SPM code."""
        if not 0 <= code < len(self.codebook):
            raise ValueError(f"SPM code {code} out of range [0, {len(self.codebook)})")
        return self._table[code]

    def decode_batch(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised decode of many codes -> (len(codes), k*k) masks."""
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.codebook)):
            raise ValueError("SPM code out of range")
        return self._table[codes]
