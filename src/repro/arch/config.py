"""Architecture configuration for the pattern-aware accelerator (Sec. III).

Defaults mirror the paper's 55 nm implementation: 64 PEs x 4 MAC units
(256 MACs/cycle), 300 MHz at 1 V, a 128 KB weight SRAM holding up to 32768
3x3 kernels with 4 non-zeros at 8-bit quantisation, a 4 KB pattern SRAM,
and 60-word kernel/SPM register files (which integrally hold kernels with
1-6 non-zeros, since 60 is divisible by 1..6).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ArchConfig", "PAPER_ARCH"]


@dataclass(frozen=True)
class ArchConfig:
    """Hardware parameters of the pattern-aware architecture."""

    num_pes: int = 64
    macs_per_pe: int = 4
    frequency_hz: float = 300e6
    voltage_v: float = 1.0
    weight_bits: int = 8  # on-chip quantisation (Sec. IV-E)
    kernel_size: int = 3
    kernel_register_words: int = 60
    spm_register_words: int = 60
    fetch_width_weights: int = 8  # weights per data fetch (Fig. 3b rows)
    weight_sram_bytes: int = 128 * 1024
    pattern_sram_bytes: int = 4 * 1024
    data_sram_bytes: int = 256 * 1024
    activation_density: float = 0.8  # paper: "average activation sparsity is 0.8"
    # Memory-side roofline for the per-layer cost model: bytes the DRAM
    # interface moves per cycle (64-bit DDR at the core clock).
    dram_bytes_per_cycle: float = 8.0

    def __post_init__(self) -> None:
        if self.num_pes < 1 or self.macs_per_pe < 1:
            raise ValueError("need at least one PE and one MAC per PE")
        if not 0.0 < self.activation_density <= 1.0:
            raise ValueError("activation_density must be in (0, 1]")
        if self.dram_bytes_per_cycle <= 0:
            raise ValueError("dram_bytes_per_cycle must be > 0")

    @property
    def total_macs(self) -> int:
        """MAC units available per cycle (256 in the paper)."""
        return self.num_pes * self.macs_per_pe

    @property
    def peak_ops_per_second(self) -> float:
        """Peak throughput counting one MAC as two ops (mul + add)."""
        return 2.0 * self.total_macs * self.frequency_hz

    @property
    def kernel_area(self) -> int:
        return self.kernel_size * self.kernel_size

    def kernels_in_weight_sram(self, n_nonzero: int) -> int:
        """Kernels the weight SRAM holds at the given per-kernel sparsity.

        Paper: 128 KB holds 32768 kernels with 4 non-zeros at 8 bit.
        """
        bits_per_kernel = n_nonzero * self.weight_bits
        return (self.weight_sram_bytes * 8) // bits_per_kernel


# The exact configuration evaluated in Sec. IV-E / Table IX.
PAPER_ARCH = ArchConfig()
