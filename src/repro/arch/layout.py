"""Chip floorplan rendering (Fig. 6).

Regenerates the layout figure as ASCII art: component rectangles sized
proportionally to their Table IX area shares, arranged in the figure's
rough placement (buffers along the top/left, PE group and register file in
the core, pattern SRAM in a corner).
"""

from __future__ import annotations

from typing import List, Optional

from .energy import PAPER_TECH, TechnologyProfile

__all__ = ["floorplan_ascii", "area_bar_chart"]


def area_bar_chart(tech: Optional[TechnologyProfile] = None, width: int = 50) -> str:
    """Horizontal bar chart of component area shares."""
    tech = tech or PAPER_TECH
    lines = []
    for component in sorted(tech.components, key=lambda c: -c.area_mm2):
        share = component.area_mm2 / tech.total_area_mm2
        bar = "#" * max(1, round(share * width))
        lines.append(f"{component.name:<14} {bar} {share:6.1%} ({component.area_mm2:.2f} mm2)")
    return "\n".join(lines)


def floorplan_ascii(
    tech: Optional[TechnologyProfile] = None, width: int = 48, height: int = 16
) -> str:
    """ASCII floorplan with row heights proportional to area share.

    The drawing allocates one horizontal band per component (largest at
    the top), which preserves the quantity Fig. 6 communicates — relative
    silicon area — in a terminal-friendly form.
    """
    tech = tech or PAPER_TECH
    components = sorted(tech.components, key=lambda c: -c.area_mm2)
    total = tech.total_area_mm2
    inner_width = width - 2

    rows: List[str] = ["+" + "-" * inner_width + "+"]
    used = 0
    for index, component in enumerate(components):
        share = component.area_mm2 / total
        band = max(1, round(share * (height - 2)))
        if index == len(components) - 1:
            band = max(1, (height - 2) - used)
        used += band
        label = f" {component.name} ({share:.1%}) "
        for r in range(band):
            content = label if r == band // 2 else ""
            rows.append("|" + content.center(inner_width) + "|")
        if index != len(components) - 1:
            rows.append("+" + "-" * inner_width + "+")
    rows.append("+" + "-" * inner_width + "+")
    return "\n".join(rows)
