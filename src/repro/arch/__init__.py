"""repro.arch — the pattern-aware accelerator (the paper's Sec. III/IV-E).

Memory layout and packing (Fig. 3), SPM decoding, sparsity-IO pointer
generation (Fig. 4), the 64x4-MAC PE group, the 4-stage pipeline (Fig. 5),
cycle-level and analytic simulators, the Table IX area/power model, the
EIE-like irregular baseline, and the Fig. 6 floorplan.
"""

from .config import PAPER_ARCH, ArchConfig
from .decoder import SPMDecoder
from .eie import EIE_INDEX_BITS_PER_WEIGHT, IrregularCycleModel, eie_index_sram_bytes
from .fixed_point import accumulate_width_bits, int8_conv2d, int8_mac, requantize
from .energy import (
    PAPER_TECH,
    ComponentBudget,
    TechnologyProfile,
    efficiency_sweep,
    tops_per_watt,
)
from .layout import area_bar_chart, floorplan_ascii
from .memory import (
    KernelRegisterFile,
    PackedWeights,
    fetch_geometry,
    pack_nonzero_sequences,
    sram_overheads,
    unpack_nonzero_sequences,
)
from .pe import MACStats, PatternAwarePE, PEGroup
from .pipeline import PIPELINE_STAGES, PipelineModel
from .pointer import (
    GatherPlan,
    compaction_pointers,
    gather_plan,
    pointers_from_offsets,
    sparsity_mask,
    zero_gap_offsets,
)
from .simulator import (
    ConvLayerSimulator,
    LayerSimResult,
    NetworkSimResult,
    simulate_network_analytic,
)
from .latency import (
    InferenceCost,
    LayerCost,
    conv_layer_cost,
    inference_cost,
    inference_cost_by_layer,
    inference_cost_sweep,
)
from .model_sim import (
    ConvWorkload,
    ModelCycleReport,
    capture_conv_workloads,
    simulate_model_cycles,
)
from .schedule import LayerSchedule, NetworkSchedule, schedule_layer, schedule_network
from .traffic import TrafficReport, dram_traffic

__all__ = [
    "ArchConfig",
    "PAPER_ARCH",
    "SPMDecoder",
    "PackedWeights",
    "pack_nonzero_sequences",
    "unpack_nonzero_sequences",
    "fetch_geometry",
    "KernelRegisterFile",
    "sram_overheads",
    "sparsity_mask",
    "compaction_pointers",
    "zero_gap_offsets",
    "pointers_from_offsets",
    "GatherPlan",
    "gather_plan",
    "MACStats",
    "PatternAwarePE",
    "PEGroup",
    "PIPELINE_STAGES",
    "PipelineModel",
    "ConvLayerSimulator",
    "LayerSimResult",
    "NetworkSimResult",
    "simulate_network_analytic",
    "ComponentBudget",
    "TechnologyProfile",
    "PAPER_TECH",
    "tops_per_watt",
    "efficiency_sweep",
    "EIE_INDEX_BITS_PER_WEIGHT",
    "eie_index_sram_bytes",
    "IrregularCycleModel",
    "floorplan_ascii",
    "area_bar_chart",
    "TrafficReport",
    "dram_traffic",
    "LayerSchedule",
    "NetworkSchedule",
    "schedule_network",
    "InferenceCost",
    "LayerCost",
    "conv_layer_cost",
    "inference_cost",
    "inference_cost_by_layer",
    "inference_cost_sweep",
    "schedule_layer",
    "ConvWorkload",
    "ModelCycleReport",
    "capture_conv_workloads",
    "simulate_model_cycles",
    "int8_mac",
    "int8_conv2d",
    "requantize",
    "accumulate_width_bits",
]
