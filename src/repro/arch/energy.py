"""Area/power/efficiency model calibrated to Table IX (Sec. IV-E).

Design Compiler + UMC 55 nm is unavailable offline, so the per-component
area and power of the paper's implementation (Table IX, measured at
300 MHz / 1 V) are exposed as the calibrated *technology profile*; every
derived number of Sec. IV-E — total power, TOPS/W at each sparsity, the
SRAM index overhead, the Fig. 6 floorplan shares — is recomputed from it.

Paper anchors: 3.15 TOPS/W dense (= 2 x 256 MACs x 300 MHz / 48.7 mW) up
to 28.39 TOPS/W at 88.9% weight sparsity (9x effectual speedup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .config import ArchConfig

__all__ = ["ComponentBudget", "TechnologyProfile", "PAPER_TECH", "tops_per_watt", "efficiency_sweep"]


@dataclass(frozen=True)
class ComponentBudget:
    """Area/power of one chip component (Table IX row)."""

    name: str
    area_mm2: float
    power_mw: float


@dataclass
class TechnologyProfile:
    """Calibrated 55 nm component budgets at 300 MHz / 1 V."""

    components: List[ComponentBudget]
    frequency_hz: float = 300e6
    voltage_v: float = 1.0

    @property
    def total_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    @property
    def total_power_mw(self) -> float:
        return sum(c.power_mw for c in self.components)

    def area_share(self, name: str) -> float:
        return self.by_name(name).area_mm2 / self.total_area_mm2

    def power_share(self, name: str) -> float:
        return self.by_name(name).power_mw / self.total_power_mw

    def by_name(self, name: str) -> ComponentBudget:
        for component in self.components:
            if component.name == name:
                return component
        raise KeyError(f"unknown component {name!r}")

    def scaled(self, frequency_hz: float, voltage_v: float) -> "TechnologyProfile":
        """First-order dynamic-power scaling: P ~ f * V^2 (CMOS).

        Area is voltage/frequency independent; used by the what-if sweeps.
        """
        factor = (frequency_hz / self.frequency_hz) * (voltage_v / self.voltage_v) ** 2
        return TechnologyProfile(
            components=[
                ComponentBudget(c.name, c.area_mm2, c.power_mw * factor)
                for c in self.components
            ],
            frequency_hz=frequency_hz,
            voltage_v=voltage_v,
        )

    def table_rows(self) -> List[dict]:
        """Table IX rows: component, area, area %, power, power %."""
        rows = [
            {
                "component": "Overall",
                "area_mm2": self.total_area_mm2,
                "area_share": 1.0,
                "power_mw": self.total_power_mw,
                "power_share": 1.0,
            }
        ]
        for component in self.components:
            rows.append(
                {
                    "component": component.name,
                    "area_mm2": component.area_mm2,
                    "area_share": self.area_share(component.name),
                    "power_mw": component.power_mw,
                    "power_share": self.power_share(component.name),
                }
            )
        return rows


# Table IX (not including PLL and IO). Component budgets sum to the paper's
# overall 8.00 mm^2 / 48.7 mW.
PAPER_TECH = TechnologyProfile(
    components=[
        ComponentBudget("Data SRAM", 3.25, 13.7),
        ComponentBudget("Weight SRAM", 2.48, 15.6),
        ComponentBudget("Pattern SRAM", 0.19, 0.9),
        ComponentBudget("Register File", 1.58, 13.6),
        ComponentBudget("PE group", 0.50, 4.9),
    ]
)


def tops_per_watt(
    arch: Optional[ArchConfig] = None,
    tech: Optional[TechnologyProfile] = None,
    effective_speedup: float = 1.0,
) -> float:
    """Power efficiency in TOPS/W at a given effectual speedup.

    ``effective_speedup = 1`` is the dense datapath (3.15 TOPS/W in the
    paper); PCNN with n non-zeros of 9 reaches ``9/n`` effectual ops per
    issued op, so e.g. 9x -> 28.39 TOPS/W.
    """
    arch = arch or ArchConfig()
    tech = tech or PAPER_TECH
    effective_ops = arch.peak_ops_per_second * effective_speedup
    watts = tech.total_power_mw * 1e-3
    return effective_ops / watts / 1e12


def efficiency_sweep(
    ns=(9, 4, 3, 2, 1),
    arch: Optional[ArchConfig] = None,
    tech: Optional[TechnologyProfile] = None,
) -> Dict[int, float]:
    """TOPS/W for each kernel sparsity n (n=9 is the dense point)."""
    arch = arch or ArchConfig()
    return {
        n: tops_per_watt(arch, tech, effective_speedup=arch.kernel_area / n) for n in ns
    }
