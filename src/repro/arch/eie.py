"""EIE-like irregular-sparsity baseline architecture (Sec. IV-E comparison).

EIE [12] keeps irregularly pruned weights in CSC format: ~4 index bits per
non-zero weight (64 KB of index SRAM to denote 128 K weights, as the paper
quotes), and its parallel units suffer load imbalance because kernels hold
*different* numbers of non-zeros. This module models both effects so the
benches can put PCNN's numbers side by side with an executable strawman:

- :func:`eie_index_sram_bytes` — index storage for a weight count;
- :class:`IrregularCycleModel` — the same PE-group cycle model as
  :mod:`repro.arch.simulator` but fed irregular per-kernel non-zero
  counts, exposing the utilisation gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional

import numpy as np

from .config import ArchConfig
from .pe import MACStats, PEGroup

__all__ = ["EIE_INDEX_BITS_PER_WEIGHT", "eie_index_sram_bytes", "IrregularCycleModel"]

EIE_INDEX_BITS_PER_WEIGHT = 4


def eie_index_sram_bytes(num_weights: int, bits_per_weight: int = EIE_INDEX_BITS_PER_WEIGHT) -> int:
    """Index SRAM bytes to denote ``num_weights`` non-zero weights in CSC.

    Paper quote: "64KB index SRAM is needed to denote 128K weights".
    """
    return num_weights * bits_per_weight // 8


@dataclass
class ImbalanceResult:
    """Outcome of the irregular-vs-regular utilisation experiment."""

    regular_cycles: int
    irregular_cycles: int
    regular_utilization: float
    irregular_utilization: float

    @property
    def imbalance_penalty(self) -> float:
        """Extra cycles irregular pruning pays at equal average density."""
        return self.irregular_cycles / self.regular_cycles


class IrregularCycleModel:
    """Cycle comparison: balanced (PCNN) vs irregular kernels at equal density.

    Both workloads have the same *average* non-zeros per kernel; the
    irregular one draws per-kernel counts from the empirical distribution
    of magnitude pruning (binomial-like spread), so per-window group
    latency is governed by the max across PEs.
    """

    def __init__(self, arch: Optional[ArchConfig] = None) -> None:
        self.arch = arch or ArchConfig()
        self.group = PEGroup(self.arch)

    def _schedule(self, effectual_per_filter_per_window: np.ndarray) -> MACStats:
        total = MACStats()
        for window in effectual_per_filter_per_window:
            total.merge(self.group.window_cycles(window))
        return total

    def compare(
        self,
        num_filters: int,
        num_channels: int,
        num_windows: int,
        n_average: int,
        rng: Optional[np.random.Generator] = None,
        activation_density: float = 1.0,
    ) -> ImbalanceResult:
        """Run both schedules and report cycles and utilisation.

        The regular workload gives every (filter, channel) kernel exactly
        ``n_average`` effectual MACs; the irregular workload draws kernel
        counts Binomial(9, n_average/9) — equal mean, irregular spread —
        then thins both by the activation density.
        """
        rng = rng or np.random.default_rng(0)
        k2 = self.arch.kernel_area

        def thin(counts: np.ndarray) -> np.ndarray:
            if activation_density >= 1.0:
                return counts
            return rng.binomial(counts, activation_density)

        regular_kernel = np.full((num_windows, num_filters, num_channels), n_average)
        irregular_kernel = rng.binomial(k2, n_average / k2, size=regular_kernel.shape)

        regular = self._schedule(thin(regular_kernel).sum(axis=2))
        irregular = self._schedule(thin(irregular_kernel).sum(axis=2))
        return ImbalanceResult(
            regular_cycles=regular.cycles,
            irregular_cycles=irregular.cycles,
            regular_utilization=regular.utilization,
            irregular_utilization=irregular.utilization,
        )
