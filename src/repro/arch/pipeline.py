"""Pipeline model of the pattern-aware PE (Sec. III-B, Fig. 5).

Four stages: (1) data pre-process — kernel restore from SPM + activation
load/zero-detect; (2) sparsity pointer generation; (3) MAC; (4) partial-sum
accumulate + ReLU. All stages are pipelined with initiation interval 1, so
a stream of work items costs ``fill + sum(item_cycles)`` where the MAC
stage (variable cycles per item) dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["PIPELINE_STAGES", "PipelineModel"]

PIPELINE_STAGES: List[str] = [
    "data_preprocess",  # kernel restore + activation load/zero-detect
    "pointer_generation",  # sparsity IO (Fig. 4)
    "mac",  # effectual multiply-accumulates
    "accumulate_relu",  # partial-sum reduction + ReLU
]


@dataclass(frozen=True)
class PipelineModel:
    """Throughput model of the 4-stage pipeline."""

    num_stages: int = len(PIPELINE_STAGES)

    @property
    def fill_cycles(self) -> int:
        """Cycles to fill the pipeline before the first result."""
        return self.num_stages - 1

    def total_cycles(self, item_cycles: Iterable[int]) -> int:
        """Cycles to stream items whose MAC stage takes ``item_cycles``.

        With II=1 everywhere except the (variable-latency) MAC stage, the
        MAC stage is the bottleneck: total = fill + sum of MAC cycles.
        """
        return self.fill_cycles + int(sum(item_cycles))

    def throughput_items_per_cycle(self, item_cycles: Sequence[int]) -> float:
        """Steady-state items per cycle."""
        total = self.total_cycles(item_cycles)
        return len(item_cycles) / total if total else 0.0
