"""Bit-accurate int8 MAC datapath (the silicon's arithmetic).

The accelerator stores 8-bit weights (Sec. IV-E) and multiplies them
against quantized activations in integer arithmetic, accumulating into a
wide register before requantization. This module models that datapath
exactly — int8 x int8 products, int32 accumulation, scale folding — and
provides an integer convolution whose dequantized output provably equals
the float convolution of the dequantized operands (tested), so the
quantization error measured at the model level is *entirely* attributable
to the quantizers, never to the datapath model.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.quantize import QuantizedTensor, quantize_symmetric
from ..nn.functional import im2col

__all__ = ["int8_mac", "int8_conv2d", "requantize", "accumulate_width_bits"]


def accumulate_width_bits(n_products: int, operand_bits: int = 8) -> int:
    """Accumulator width that can never overflow ``n_products`` products.

    Each int8 x int8 product fits in 2*8 - 1 = 15 bits (signed); summing
    ``n_products`` of them needs ``15 + ceil(log2 n)`` bits. The paper's
    worst case (9 positions x 512 channels) fits comfortably in 32 bits.
    """
    from math import ceil, log2

    product_bits = 2 * operand_bits - 1
    return product_bits + max(1, ceil(log2(max(n_products, 2))))


def int8_mac(
    weights: np.ndarray, activations: np.ndarray, accumulator_dtype=np.int64
) -> np.ndarray:
    """Integer multiply-accumulate with explicit wide accumulation.

    Both operands are integer code arrays (the hardware's register
    contents); the result is their exact integer dot product along the
    last axis.
    """
    w = np.asarray(weights, dtype=accumulator_dtype)
    a = np.asarray(activations, dtype=accumulator_dtype)
    return (w * a).sum(axis=-1)


def requantize(
    accumulator: np.ndarray, scale_product: np.ndarray, out_bits: Optional[int] = None
) -> np.ndarray:
    """Fold scales back in; optionally clamp to an output precision.

    ``value = accumulator * w_scale * a_scale``; when ``out_bits`` is
    given, the result is re-quantized symmetrically (the layer-to-layer
    path in a fully integer pipeline).
    """
    values = accumulator.astype(np.float64) * scale_product
    if out_bits is None:
        return values
    return quantize_symmetric(values, bits=out_bits).dequantize()


def int8_conv2d(
    x_q: QuantizedTensor,
    w_q: QuantizedTensor,
    x_shape: Tuple[int, int, int, int],
    w_shape: Tuple[int, int, int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Integer convolution on quantized codes, dequantized at the output.

    Restricted to per-tensor scales (scalar ``scale`` on both operands),
    matching the simplest hardware configuration. Returns float outputs
    equal to ``conv2d(dequantize(x), dequantize(w))`` exactly (the
    integer path commutes with the scales).
    """
    if np.ndim(x_q.scale) != 0 and np.asarray(x_q.scale).size != 1:
        raise ValueError("int8_conv2d requires per-tensor activation scale")
    if np.ndim(w_q.scale) != 0 and np.asarray(w_q.scale).size != 1:
        raise ValueError("int8_conv2d requires per-tensor weight scale")
    n, c, h, w = x_shape
    f, c_w, kh, kw = w_shape
    if c != c_w:
        raise ValueError("channel mismatch")

    x_codes = x_q.codes.reshape(x_shape).astype(np.int64)
    w_codes = w_q.codes.reshape(w_shape).astype(np.int64)
    cols, (oh, ow) = im2col(x_codes.astype(np.float64), (kh, kw), stride, padding)
    cols = cols.astype(np.int64)
    w_mat = w_codes.reshape(f, -1)
    accumulator = cols @ w_mat.T  # exact integer GEMM
    scale_product = float(np.asarray(x_q.scale).reshape(-1)[0]) * float(
        np.asarray(w_q.scale).reshape(-1)[0]
    )
    out = accumulator.astype(np.float64) * scale_product
    return out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
