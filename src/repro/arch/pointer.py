"""Sparsity-IO pointer generation (Sec. III-B, Fig. 4b/4c).

The datapath stores each kernel as a *compacted* non-zero sequence in the
kernel register (positions given by the decoded SPM weight mask). For a
convolution window the effectual MACs are the positions where both the
weight mask and the activation mask (from the zero-detect unit) are 1 —
the *sparsity mask*. The sparsity IO turns that mask into pointers:

- for each effectual position, the pointer into the compacted weight
  sequence is the position's rank within the *weight* mask;
- the hardware computes this with an adder-AND chain over the inverted
  mask, "accumulating the number of zeros between every two non-zero
  weights" (Fig. 4c); :func:`zero_gap_offsets` is the bit-exact model of
  that chain, and :func:`pointers_from_offsets` reconstructs absolute
  pointers from the gap offsets — tests assert it agrees with the direct
  rank computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "sparsity_mask",
    "compaction_pointers",
    "zero_gap_offsets",
    "pointers_from_offsets",
    "GatherPlan",
    "gather_plan",
]


def sparsity_mask(weight_mask: np.ndarray, activation_mask: np.ndarray) -> np.ndarray:
    """AND of weight and activation masks — the effectual-MAC positions."""
    weight_mask = np.asarray(weight_mask).astype(bool)
    activation_mask = np.asarray(activation_mask).astype(bool)
    if weight_mask.shape != activation_mask.shape:
        raise ValueError("mask shapes differ")
    return (weight_mask & activation_mask).astype(np.int64)


def compaction_pointers(mask: np.ndarray) -> np.ndarray:
    """Rank of each position within ``mask`` (pointer into compact storage).

    Entry ``i`` is meaningful only where ``mask[i] == 1``; it equals the
    number of ones strictly before position ``i``.
    """
    mask = np.asarray(mask).astype(np.int64)
    return np.cumsum(mask) - mask  # exclusive prefix sum


def zero_gap_offsets(mask: np.ndarray) -> np.ndarray:
    """The adder-AND chain of Fig. 4c: zeros between consecutive ones.

    For the j-th one at position ``p_j``, the offset is the number of
    zeros separating it from the previous one (``p_0`` for the first —
    the "head offset"). Returned in order of the ones.

    >>> zero_gap_offsets([0, 1, 0, 1, 0, 1, 0, 0, 0]).tolist()
    [1, 1, 1]
    """
    mask = np.asarray(mask).astype(np.int64)
    ones = np.flatnonzero(mask)
    if len(ones) == 0:
        return np.zeros(0, dtype=np.int64)
    gaps = np.empty(len(ones), dtype=np.int64)
    gaps[0] = ones[0]
    gaps[1:] = np.diff(ones) - 1
    return gaps


def pointers_from_offsets(offsets: np.ndarray) -> np.ndarray:
    """Absolute positions recovered from gap offsets (the adder chain).

    ``position_j = sum_{i<=j} (offset_i + 1) - 1`` — each effectual weight
    advances the pointer by its gap plus itself.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    return np.cumsum(offsets + 1) - 1


@dataclass(frozen=True)
class GatherPlan:
    """Effectual-MAC schedule for one (kernel, window) pair.

    Attributes
    ----------
    weight_pointers:
        Indices into the kernel's *compacted* non-zero sequence.
    activation_positions:
        Indices into the 9-entry activation register (kernel positions).
    """

    weight_pointers: np.ndarray
    activation_positions: np.ndarray

    @property
    def num_macs(self) -> int:
        return len(self.weight_pointers)


def gather_plan(weight_mask: np.ndarray, activation_mask: np.ndarray) -> GatherPlan:
    """Build the effectual-MAC gather plan for one kernel and window.

    This is the complete sparsity-IO function: AND the masks, then for
    each effectual position emit (pointer into compacted weights, raw
    activation position).
    """
    s_mask = sparsity_mask(weight_mask, activation_mask)
    positions = np.flatnonzero(s_mask)
    weight_ranks = compaction_pointers(weight_mask)
    return GatherPlan(
        weight_pointers=weight_ranks[positions],
        activation_positions=positions,
    )
