"""Sparsity-aware processing elements (Sec. III-B, Fig. 4a).

The paper's PE group has 64 PEs with 4 MAC units each (256 MACs/cycle).
Under the shared-activation dataflow every PE processes a different output
filter against the *same* broadcast activation window; because PCNN gives
every kernel exactly ``n`` non-zeros, per-PE work is balanced and the MAC
array stays utilised — the property the cycle model below makes
measurable (and which irregular pruning destroys, see
:mod:`repro.arch.eie`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import List, Optional, Sequence

import numpy as np

from .config import ArchConfig
from .pointer import GatherPlan, gather_plan

__all__ = ["MACStats", "PatternAwarePE", "PEGroup"]


@dataclass
class MACStats:
    """Cycle/utilisation accounting of a PE or PE group."""

    cycles: int = 0
    effectual_macs: int = 0
    issued_mac_slots: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of issued MAC slots doing useful work."""
        if self.issued_mac_slots == 0:
            return 1.0
        return self.effectual_macs / self.issued_mac_slots

    def merge(self, other: "MACStats") -> None:
        self.cycles += other.cycles
        self.effectual_macs += other.effectual_macs
        self.issued_mac_slots += other.issued_mac_slots


class PatternAwarePE:
    """One PE: ``macs_per_pe`` MAC units fed by sparsity pointers.

    Computes dot products between a compacted weight sequence and the
    shared activation register, issuing up to ``macs_per_pe`` effectual
    MACs per cycle from its work queue.
    """

    def __init__(self, macs_per_pe: int = 4) -> None:
        if macs_per_pe < 1:
            raise ValueError("macs_per_pe must be >= 1")
        self.macs_per_pe = macs_per_pe

    def compute(
        self,
        compact_weights: np.ndarray,
        activations: np.ndarray,
        plan: GatherPlan,
    ) -> float:
        """Execute a gather plan; returns the partial sum.

        ``compact_weights`` is the kernel's non-zero sequence (as stored in
        the kernel register file), ``activations`` the 9-entry window.
        """
        if plan.num_macs == 0:
            return 0.0
        weights = np.asarray(compact_weights)[plan.weight_pointers]
        acts = np.asarray(activations)[plan.activation_positions]
        return float(np.dot(weights, acts))

    def cycles_for(self, num_effectual: int) -> int:
        """Cycles to drain ``num_effectual`` MACs through this PE."""
        return ceil(num_effectual / self.macs_per_pe)


class PEGroup:
    """The 64-PE group with shared-activation broadcast.

    Filters are assigned round-robin to PEs. For each synchronisation
    region (one convolution window) a PE's work is the sum of effectual
    MACs over its filters and all input channels; the group's latency is
    the *maximum* per-PE cycle count — the source of the imbalance penalty
    for irregular sparsity and of full utilisation for PCNN.
    """

    def __init__(self, arch: Optional[ArchConfig] = None) -> None:
        self.arch = arch or ArchConfig()
        self.pe = PatternAwarePE(self.arch.macs_per_pe)

    def assign_filters(self, num_filters: int) -> List[np.ndarray]:
        """Round-robin filter assignment: PE i gets filters i, i+P, ..."""
        return [
            np.arange(pe_index, num_filters, self.arch.num_pes)
            for pe_index in range(self.arch.num_pes)
        ]

    def window_cycles(self, effectual_per_filter: np.ndarray) -> MACStats:
        """Latency and utilisation for one window synchronisation region.

        Parameters
        ----------
        effectual_per_filter:
            ``(num_filters,)`` effectual MAC counts, already summed over
            input channels.
        """
        effectual_per_filter = np.asarray(effectual_per_filter)
        assignments = self.assign_filters(len(effectual_per_filter))
        per_pe_work = np.array([effectual_per_filter[idx].sum() for idx in assignments])
        cycles = int(max((self.pe.cycles_for(int(w)) for w in per_pe_work), default=0))
        active_pes = int((per_pe_work > 0).sum())
        stats = MACStats(
            cycles=cycles,
            effectual_macs=int(per_pe_work.sum()),
            issued_mac_slots=cycles * self.arch.num_pes * self.arch.macs_per_pe,
        )
        return stats

    def compute_window(
        self,
        compact_weights: Sequence[np.ndarray],
        weight_masks: Sequence[np.ndarray],
        activations: np.ndarray,
    ) -> np.ndarray:
        """Functionally compute one window's partial sums for all filters.

        ``compact_weights[f]`` / ``weight_masks[f]`` describe filter f's
        kernel for the current input channel; ``activations`` is the
        shared 9-entry window. Zero-activations are skipped exactly as the
        hardware's zero-detect + pointer path does.
        """
        activation_mask = (np.asarray(activations) != 0).astype(np.int64)
        outputs = np.zeros(len(compact_weights))
        for f, (weights, mask) in enumerate(zip(compact_weights, weight_masks)):
            plan = gather_plan(mask, activation_mask)
            outputs[f] = self.pe.compute(weights, activations, plan)
        return outputs
