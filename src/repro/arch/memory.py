"""Memory system of the pattern-aware architecture (Sec. III-A, Fig. 3).

Models three things:

- the Fig. 3b *storing format*: non-zero sequences of equal length ``n``
  packed back-to-back into fixed-width data-fetch rows (8 weights per
  fetch in the paper), with the ``filters per fetch`` arithmetic the
  figure annotates (n=2 -> 4 filters/fetch, n=3 -> 8 filters per 3
  fetches, n=4 -> 2 filters/fetch);
- the 60-word kernel register file that integrally stores kernels with
  1-6 non-zeros (60 is divisible by each), padding for n > 6;
- SRAM capacity/overhead accounting used by the Sec. IV-E memory
  evaluation (3.1% index overhead; EIE's 64 KB index SRAM per 128 K
  weights).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, gcd
from typing import List, Tuple

import numpy as np

from .config import ArchConfig

__all__ = [
    "PackedWeights",
    "pack_nonzero_sequences",
    "unpack_nonzero_sequences",
    "fetch_geometry",
    "KernelRegisterFile",
    "sram_overheads",
]


def fetch_geometry(n_nonzero: int, fetch_width: int = 8) -> Tuple[int, int]:
    """(filters, fetches) per repeating group in the Fig. 3b layout.

    The packing repeats with period ``lcm(n, width)``:

    >>> fetch_geometry(2)   # "4 filters per data fetch"
    (4, 1)
    >>> fetch_geometry(3)   # "8 filters each 3 data fetches"
    (8, 3)
    >>> fetch_geometry(4)   # "2 filters per data fetch"
    (2, 1)
    """
    if n_nonzero < 1:
        raise ValueError("n_nonzero must be >= 1")
    lcm = n_nonzero * fetch_width // gcd(n_nonzero, fetch_width)
    return lcm // n_nonzero, lcm // fetch_width


@dataclass
class PackedWeights:
    """Non-zero sequences packed into fetch rows (Fig. 3b)."""

    rows: np.ndarray  # (num_fetches, fetch_width) values, zero-padded tail
    n_nonzero: int
    num_kernels: int
    fetch_width: int

    @property
    def num_fetches(self) -> int:
        return len(self.rows)

    @property
    def payload_words(self) -> int:
        """Total meaningful weight slots (kernels * n)."""
        return self.num_kernels * self.n_nonzero

    @property
    def padding_words(self) -> int:
        return self.rows.size - self.payload_words


def pack_nonzero_sequences(values: np.ndarray, fetch_width: int = 8) -> PackedWeights:
    """Pack per-kernel non-zero sequences ``(kernels, n)`` into fetch rows.

    Sequences are laid back-to-back in kernel order — possible only because
    PCNN makes every sequence the same length (the whole point of the
    regular format); the host controller can then compute any kernel's
    location as ``kernel_index * n``.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError("values must be (kernels, n)")
    kernels, n = values.shape
    flat = values.reshape(-1)
    num_fetches = ceil(flat.size / fetch_width) if flat.size else 0
    rows = np.zeros((num_fetches, fetch_width), dtype=values.dtype)
    rows.reshape(-1)[: flat.size] = flat
    return PackedWeights(rows=rows, n_nonzero=n, num_kernels=kernels, fetch_width=fetch_width)


def unpack_nonzero_sequences(packed: PackedWeights) -> np.ndarray:
    """Inverse of :func:`pack_nonzero_sequences` (host-controller fetch)."""
    flat = packed.rows.reshape(-1)[: packed.payload_words]
    return flat.reshape(packed.num_kernels, packed.n_nonzero).copy()


class KernelRegisterFile:
    """The 60-word kernel register of Fig. 3a.

    Holds the non-zero sequences of as many kernels as fit integrally;
    for 1 <= n <= 6 the 60 words divide evenly ("integrally store kernels
    that contain 1 to 6 non-zero weights"), for n in {7, 8, 9} the tail is
    zero-padded ("for other sparsities, we pad zeros to align the
    memory").
    """

    def __init__(self, words: int = 60) -> None:
        if words < 1:
            raise ValueError("register file needs at least one word")
        self.words = words
        self.storage = np.zeros(words)
        self._n = 0
        self._kernels = 0

    def capacity_kernels(self, n_nonzero: int) -> int:
        """Kernels storable at sparsity n (integral for divisors of 60)."""
        return self.words // n_nonzero

    def padding_words(self, n_nonzero: int) -> int:
        """Wasted words at the tail for this sparsity (0 for n | 60)."""
        return self.words - self.capacity_kernels(n_nonzero) * n_nonzero

    def load(self, values: np.ndarray) -> int:
        """Fill the register with kernel sequences; returns kernels loaded."""
        values = np.asarray(values)
        kernels, n = values.shape
        fit = min(kernels, self.capacity_kernels(n))
        self.storage[:] = 0.0
        self.storage[: fit * n] = values[:fit].reshape(-1)
        self._n = n
        self._kernels = fit
        return fit

    def kernel_sequence(self, index: int) -> np.ndarray:
        """Non-zero sequence of the ``index``-th loaded kernel."""
        if not 0 <= index < self._kernels:
            raise IndexError(f"kernel {index} not loaded (have {self._kernels})")
        start = index * self._n
        return self.storage[start : start + self._n]

    def fetch(self, kernel_index: int, pointer: int) -> float:
        """Weight fetch by (kernel, sparsity-pointer) — the datapath access."""
        return float(self.kernel_sequence(kernel_index)[pointer])


def sram_overheads(arch: ArchConfig, num_patterns: int = 16, n_nonzero: int = 4) -> dict:
    """Sec. IV-E memory accounting.

    Returns the paper-configuration overhead (pattern SRAM / weight SRAM =
    3.1%), plus an *analytic* per-kernel index requirement and the EIE
    comparison (4 bits per weight -> 64 KB index SRAM per 128 K weights).
    """
    from ..core.compression import spm_index_bits

    kernels = arch.kernels_in_weight_sram(n_nonzero)
    weights = kernels * n_nonzero
    spm_bits = spm_index_bits(num_patterns)
    return {
        "weight_sram_bytes": arch.weight_sram_bytes,
        "pattern_sram_bytes": arch.pattern_sram_bytes,
        "kernels_capacity": kernels,
        "weights_capacity": weights,
        "index_overhead_fraction": arch.pattern_sram_bytes / arch.weight_sram_bytes,
        "spm_bits_per_kernel": spm_bits,
        "spm_index_bytes_required": kernels * spm_bits // 8,
        "eie_index_bits_per_weight": 4,
        "eie_index_bytes_required": weights * 4 // 8,
    }
