"""Cycle-level simulator of the pattern-aware architecture (Sec. III/IV-E).

Two fidelity levels:

- :class:`ConvLayerSimulator` — per-layer simulation. ``functional_forward``
  computes the numeric output through the shared runtime engine
  (:func:`repro.runtime.dispatch`) and the cycle/utilisation stats through
  the vectorised model; ``datapath_forward`` additionally routes every
  multiply through the explicit datapath (SPM decode -> sparsity pointers
  -> PE MACs) and is asserted equal to :func:`repro.nn.functional.conv2d`
  in the tests; ``cycle_count`` is the vectorised cycle model with
  per-window PE synchronisation (the source of irregular-pruning's
  imbalance penalty).
- :func:`simulate_network_analytic` — closed-form network-level model
  (effectual MACs / 256 MAC-slots) used for the paper-scale VGG-16
  speedup numbers (Sec. IV-E: 2.3x / 3.1x / 4.5x / 9.0x ~= 9/n, with the
  dense counterpart running on the same activation-sparsity-aware
  datapath).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import PCNNConfig
from ..models.flops import ModelProfile
from ..nn.functional import conv_output_size, im2col
from .config import ArchConfig
from .pe import MACStats, PEGroup
from .pipeline import PipelineModel

__all__ = [
    "LayerSimResult",
    "ConvLayerSimulator",
    "NetworkSimResult",
    "simulate_network_analytic",
]


@dataclass
class LayerSimResult:
    """Result of simulating one conv layer."""

    stats: MACStats
    windows: int
    output: Optional[np.ndarray] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class ConvLayerSimulator:
    """Simulates one convolution layer on the pattern-aware PE group."""

    def __init__(self, arch: Optional[ArchConfig] = None) -> None:
        self.arch = arch or ArchConfig()
        self.group = PEGroup(self.arch)
        self.pipeline = PipelineModel()

    # ------------------------------------------------------------------
    def _windows_and_masks(
        self, x: np.ndarray, kernel: int, stride: int, padding: int
    ) -> Tuple[np.ndarray, Tuple[int, int]]:
        """im2col'd activation windows, shape (W, C, k*k)."""
        cols, (oh, ow) = im2col(x, (kernel, kernel), stride, padding)
        n, c = x.shape[0], x.shape[1]
        return cols.reshape(n * oh * ow, c, kernel * kernel), (oh, ow)

    def functional_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        stride: int = 1,
        padding: int = 1,
    ) -> LayerSimResult:
        """Conv output + cycle stats for one layer.

        The numeric output runs through the runtime engine
        (:func:`repro.runtime.dispatch`) — the datapath is value-exact by
        construction, so simulation only needs the engine's result plus
        the vectorised cycle/utilisation model (identical accounting to
        :meth:`cycle_count`). Use :meth:`datapath_forward` to push every
        multiply through the explicit SPM-decode -> pointer -> PE model
        instead (slow; for validation).
        """
        from ..runtime.engine import dispatch

        counted = self.cycle_count(
            x, (weight != 0).astype(np.int64), stride=stride, padding=padding
        )
        out = dispatch(x, weight, stride=stride, padding=padding)
        return LayerSimResult(stats=counted.stats, windows=counted.windows, output=out)

    def datapath_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        stride: int = 1,
        padding: int = 1,
    ) -> LayerSimResult:
        """Compute the conv output through the PE datapath (small layers).

        Every product is issued via a sparsity-pointer gather against the
        compacted weight storage, exactly as the hardware does.
        """
        f, c, kh, kw = weight.shape
        windows, (oh, ow) = self._windows_and_masks(x, kh, stride, padding)
        num_windows = len(windows)
        weight_masks = (weight != 0).astype(np.int64).reshape(f, c, kh * kw)
        # Compacted non-zero sequences per (filter, channel), as the kernel
        # register file stores them.
        compact = [
            [weight[fi, ci].reshape(-1)[weight_masks[fi, ci].astype(bool)] for ci in range(c)]
            for fi in range(f)
        ]

        outputs = np.zeros((num_windows, f))
        total = MACStats()
        for w_index in range(num_windows):
            effectual_per_filter = np.zeros(f, dtype=np.int64)
            for ci in range(c):
                acts = windows[w_index, ci]
                partial = self.group.compute_window(
                    [compact[fi][ci] for fi in range(f)],
                    [weight_masks[fi, ci] for fi in range(f)],
                    acts,
                )
                outputs[w_index] += partial
                act_mask = (acts != 0).astype(np.int64)
                effectual_per_filter += (weight_masks[:, ci] & act_mask).sum(axis=1)
            total.merge(self.group.window_cycles(effectual_per_filter))

        n = x.shape[0]
        out = outputs.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
        total.cycles += self.pipeline.fill_cycles
        return LayerSimResult(stats=total, windows=num_windows, output=out)

    # ------------------------------------------------------------------
    def cycle_count(
        self,
        x: np.ndarray,
        weight_mask: np.ndarray,
        stride: int = 1,
        padding: int = 1,
    ) -> LayerSimResult:
        """Vectorised cycle model (no output values computed).

        Parameters
        ----------
        x:
            Input activations (N, C, H, W); zeros are skipped by the
            zero-detect path.
        weight_mask:
            {0,1} weight mask (F, C, k, k).
        """
        f, c, kh, kw = weight_mask.shape
        windows, _ = self._windows_and_masks(x, kh, stride, padding)
        act_masks = (windows != 0).astype(np.int64)  # (W, C, k*k)
        w_masks = np.asarray(weight_mask).reshape(f, c, kh * kw).astype(np.int64)

        # effectual[w, f] = sum_c popcount(weight_mask[f,c] & act_mask[w,c])
        effectual = np.einsum("wcp,fcp->wf", act_masks, w_masks)

        # Round-robin PE assignment: PE i <- filters i, i+P, ...
        pes = self.arch.num_pes
        padded_f = ceil(f / pes) * pes
        work = np.zeros((len(effectual), padded_f), dtype=np.int64)
        work[:, :f] = effectual
        per_pe = work.reshape(len(effectual), -1, pes).sum(axis=1)  # (W, P)

        cycles_per_window = np.ceil(per_pe.max(axis=1) / self.arch.macs_per_pe).astype(int)
        total_cycles = int(cycles_per_window.sum()) + self.pipeline.fill_cycles
        stats = MACStats(
            cycles=total_cycles,
            effectual_macs=int(effectual.sum()),
            issued_mac_slots=int(cycles_per_window.sum()) * self.arch.total_macs,
        )
        return LayerSimResult(stats=stats, windows=len(effectual))


@dataclass
class NetworkSimResult:
    """Network-level performance summary."""

    layer_cycles: Dict[str, float]
    dense_layer_cycles: Dict[str, float]

    @property
    def total_cycles(self) -> float:
        return sum(self.layer_cycles.values())

    @property
    def dense_total_cycles(self) -> float:
        return sum(self.dense_layer_cycles.values())

    @property
    def speedup(self) -> float:
        """Speedup over the dense counterpart on the same datapath."""
        return self.dense_total_cycles / self.total_cycles


def simulate_network_analytic(
    profile: ModelProfile,
    config: PCNNConfig,
    arch: Optional[ArchConfig] = None,
    activation_density: Optional[float] = None,
) -> NetworkSimResult:
    """Closed-form network performance model.

    Cycles per layer = effectual MACs / (MAC slots per cycle), where
    effectual MACs = dense MACs x (n / k^2 for pruned layers) x activation
    density. The dense counterpart runs the same activation-sparsity-aware
    datapath with unpruned weights — matching the paper's "speedup
    compared to the dense counterpart" (which comes out ~= k^2/n).

    PCNN's balanced workload means no imbalance factor is applied; see
    :mod:`repro.arch.eie` for the irregular case.
    """
    arch = arch or ArchConfig()
    density = arch.activation_density if activation_density is None else activation_density
    prunable = {c.name for c in profile.prunable(kernel_size=config.kernel_size)}
    config.validate_for(len(prunable))

    layer_cycles: Dict[str, float] = {}
    dense_cycles: Dict[str, float] = {}
    config_iter = iter(config)
    slots = arch.total_macs
    for conv in profile.convs:
        dense_effectual = conv.macs * density
        dense_cycles[conv.name] = dense_effectual / slots
        if conv.name in prunable:
            layer_cfg = next(config_iter)
            fraction = layer_cfg.n / (config.kernel_size**2)
            layer_cycles[conv.name] = dense_effectual * fraction / slots
        else:
            layer_cycles[conv.name] = dense_effectual / slots
    return NetworkSimResult(layer_cycles=layer_cycles, dense_layer_cycles=dense_cycles)
