"""Command-line interface: ``pcnn-repro``.

Gives downstream users the paper's numbers without writing code:

- ``pcnn-repro report --model vgg16_cifar --n 4`` — one table row;
- ``pcnn-repro sweep --model vgg16_cifar`` — the full Table I/II sweep;
- ``pcnn-repro speedup --model vgg16_cifar --n 1`` — Sec. IV-E estimates;
- ``pcnn-repro prune --model patternnet --n 2 --out bundle.npz`` — prune a
  model and write a deployment bundle (optionally 8-bit quantized);
- ``pcnn-repro predict --model patternnet --n 2 --batch 16`` — batched
  inference through the runtime engine (micro-batching, backend choice;
  ``--compile`` for the fused float32 pipeline, ``--quantize`` for the
  int8 execution path, ``--workers N`` for parallel micro-batch
  serving);
- ``pcnn-repro serve --model patternnet --n 2 --port 8100`` — dynamic-
  batching JSON model server on the compiled pipeline (``--bundle`` to
  serve a deployment bundle, ``--quantize`` to serve it int8;
  ``--max-batch``/``--max-latency-ms`` tune the coalescing policy;
  ``--worker-procs N`` fans flushes out to inference worker processes
  over shared-memory rings — the multi-core configuration);
- ``pcnn-repro chip`` — Table IX breakdown + Fig. 6 floorplan.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from .analysis import format_compression_table, format_table
from .arch import PAPER_TECH, floorplan_ascii, simulate_network_analytic, tops_per_watt
from .core import PCNNConfig, PCNNPruner, pcnn_compression
from .core.deploy import bundle_from_pruner
from .models import MODEL_REGISTRY, create_model, model_input_shape, profile_model
from .utils.timing import Timer

__all__ = ["main"]


def _profile(model_name: str):
    model = create_model(model_name, rng=np.random.default_rng(0))
    return model, profile_model(model, model_input_shape(model_name), model_name=model_name)


def _config_for(args, num_layers: int) -> PCNNConfig:
    if args.layers:
        return PCNNConfig.from_string(args.layers)
    return PCNNConfig.uniform(args.n, num_layers, num_patterns=args.patterns)


def cmd_report(args) -> int:
    _, profile = _profile(args.model)
    config = _config_for(args, len(profile.prunable()))
    report = pcnn_compression(profile, config)
    print(format_compression_table([report], title=f"{args.model}: {config.describe()}"))
    return 0


def cmd_sweep(args) -> int:
    _, profile = _profile(args.model)
    layers = len(profile.prunable())
    reports = [
        pcnn_compression(profile, PCNNConfig.uniform(n, layers), setting=f"n = {n}")
        for n in (4, 3, 2, 1)
    ]
    print(format_compression_table(reports, title=f"{args.model}: PCNN sweep (Table I/II style)"))
    return 0


def cmd_speedup(args) -> int:
    _, profile = _profile(args.model)
    config = _config_for(args, len(profile.prunable()))
    sim = simulate_network_analytic(profile, config, activation_density=args.act_density)
    efficiency = tops_per_watt(effective_speedup=sim.speedup)
    print(
        format_table(
            ["setting", "speedup vs dense", "TOPS/W"],
            [[config.describe(), f"{sim.speedup:.2f}x", f"{efficiency:.2f}"]],
            title=f"{args.model}: architecture estimate (Sec. IV-E)",
        )
    )
    return 0


def cmd_prune(args) -> int:
    model, profile = _profile(args.model)
    config = _config_for(args, len(profile.prunable()))
    pruner = PCNNPruner(model, config)
    pruner.apply()
    pruner.verify_regularity()
    from .analysis import assert_valid

    assert_valid(model)
    bundle = bundle_from_pruner(pruner, quantize_bits=args.quantize)
    bundle.save(args.out)
    total_bits = bundle.storage_bits()
    print(f"pruned {len(bundle.layers)} layers with {config.describe()}")
    print(f"bundle written to {args.out} ({total_bits / 8 / 1024:.1f} KiB payload)")
    for name, row in bundle.storage_report().items():
        print(
            f"  {name}: {row['kernels']} kernels x n={row['n']} @ {row['weight_bits']}b "
            f"+ {row['index_bits']}b SPM -> {row['compression']:.1f}x vs fp32"
        )
    return 0


def cmd_predict(args) -> int:
    from . import runtime

    if args.no_trace:
        os.environ["REPRO_TRACE"] = "0"
    if args.repeat < 1 or args.batch < 1:
        print("error: --repeat and --batch must be >= 1", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    model, profile = _profile(args.model)
    if args.n or args.layers:
        config = _config_for(args, len(profile.prunable()))
        pruner = PCNNPruner(model, config)
        pruner.apply()
        # With encodings attached, pruned convs execute straight from
        # SPM storage (pattern backend) on the inference fast path.
        pruner.attach_encodings()
        setting = config.describe()
    else:
        setting = "dense"

    shape = model_input_shape(args.model)
    rng = np.random.default_rng(args.seed)
    x = rng.normal(size=(args.batch, *shape))

    if args.compile or args.quantize or args.tune:
        # Compile once up front: BN folding, fused epilogues, float32
        # parameters and buffer arenas; the timed loop then serves from
        # the compiled pipeline. --quantize additionally lowers the conv
        # trunk to int8 codes, calibrating on the benchmark inputs;
        # --tune picks per-layer schedules (cost model or measured,
        # persisted in the tuning cache).
        try:
            model = runtime.compile_model(
                model,
                quantize="int8" if args.quantize else None,
                calibration=x if args.quantize else None,
                tune=args.tune,
                input_shape=shape,
                winograd=not args.no_winograd,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        labels = [
            label
            for label, on in (("int8", args.quantize), (f"tune={args.tune}", args.tune))
            if on
        ]
        setting += f" [compiled{' ' + ' '.join(labels) if labels else ''}]"

    runtime.default_cache.clear()
    # Warm-up pass builds the execution plans (and compiled-path arena
    # buffers); the timed passes then run the steady-state throughput.
    warm_stats = runtime.PredictStats()
    try:
        runtime.predict(
            model, x, micro_batch=args.micro_batch, backend=args.backend,
            workers=args.workers, stats=warm_stats,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with Timer() as timer:
        for _ in range(args.repeat):
            out = runtime.predict(
                model, x, micro_batch=args.micro_batch, backend=args.backend,
                workers=args.workers,
            )
    cache = (
        model.plans if isinstance(model, runtime.CompiledModel) else runtime.default_cache
    ).stats
    print(
        format_table(
            ["setting", "backend", "batch", "micro-batch", "workers",
             "latency (ms)", "images/s", "plan cache"],
            [[
                setting,
                args.backend or "auto",
                str(args.batch),
                # The effective chunk size (predict derives one chunk per
                # worker when --micro-batch is not given).
                str(warm_stats.micro_batch or args.batch),
                str(args.workers or 1),
                f"{timer.elapsed / args.repeat * 1e3:.1f}",
                f"{args.batch * args.repeat / timer.elapsed:.1f}",
                f"{cache.hits} hits / {cache.misses} misses",
            ]],
            title=f"{args.model}: runtime.predict ({args.repeat} timed runs)",
        )
    )
    print(f"output shape: {out.shape}")
    return 0


def parse_tenant_spec(spec: str) -> tuple:
    """Parse one ``--tenant NAME=MODEL[,key=value,...]`` fleet entry.

    Keys: ``n``/``patterns`` (PCNN pruning), ``seed``, ``weight``
    (fair-share weight under the flush scheduler), ``rate`` (req/s
    quota, 429 ``quota_exceeded`` past it), ``max_queue`` and ``slo_ms``
    (per-tenant admission overrides). Example::

        --tenant hot=patternnet,weight=3,rate=200 \\
        --tenant cold=patternnet,n=2,weight=1
    """
    head, _, rest = spec.partition(",")
    name, eq, model = head.partition("=")
    if not eq or not name or not model:
        raise ValueError(
            f"tenant spec {spec!r} must start with NAME=MODEL "
            "(e.g. a=patternnet,weight=2)"
        )
    from .models import get_spec  # fail fast on unknown models

    get_spec(model)
    parsers = {
        "n": int, "patterns": int, "seed": int, "max_queue": int,
        "weight": float, "rate": float, "slo_ms": float,
    }
    kwargs = {}
    if rest:
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key = key.strip().replace("-", "_")
            if not eq or key not in parsers:
                raise ValueError(
                    f"tenant spec key {item!r} not understood; "
                    f"known: {sorted(parsers)}"
                )
            kwargs[key] = parsers[key](value)
    return name, model, kwargs


def build_model_server(args):
    """Build, load and warm the :class:`ModelServer` for ``serve``.

    Separated from :func:`cmd_serve` so tests can stand the server up
    without entering the blocking accept loop. With ``--tenant`` specs
    the server loads a whole fleet (per-tenant weights/quotas/pruning);
    otherwise the single ``--model`` path applies.
    """
    from .serving import ModelServer

    server = ModelServer(
        workers=args.workers,
        worker_procs=getattr(args, "worker_procs", None),
        max_batch=args.max_batch,
        max_latency_ms=args.max_latency_ms,
        compile=not args.no_compile,
        quantize="int8" if args.quantize else None,
        tune=args.tune,
        max_queue=getattr(args, "max_queue", None),
        slo_ms=getattr(args, "slo_ms", None),
        memory_budget_mb=getattr(args, "memory_budget_mb", None),
    )
    tenants = [parse_tenant_spec(spec) for spec in (getattr(args, "tenant", None) or [])]
    if tenants:
        for name, model, kwargs in tenants:
            server.load_registry(model, name=name, **kwargs)
        served = server.get(tenants[0][0])
    elif args.bundle:
        served = server.load_bundle(args.bundle, args.model)
    elif args.n is not None:
        served = server.load_registry(args.model, n=args.n, patterns=args.patterns)
    else:
        served = server.load_registry(args.model)
    server.warmup()
    return server, served


def cmd_serve(args) -> int:
    from .serving import ServingHTTPServer

    if args.list_models:
        from .models import registered_models

        for name, info in registered_models().items():
            shape = "x".join(str(s) for s in info["input_shape"])
            print(f"{name}  ({shape})  {info['description']}")
        return 0
    if args.max_batch < 1 or args.max_latency_ms < 0:
        print(
            "error: --max-batch must be >= 1 and --max-latency-ms >= 0",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.worker_procs is not None and args.worker_procs < 1:
        print("error: --worker-procs must be >= 1", file=sys.stderr)
        return 2
    if args.max_queue is not None and args.max_queue < 1:
        print("error: --max-queue must be >= 1", file=sys.stderr)
        return 2
    if args.slo_ms is not None and args.slo_ms <= 0:
        print("error: --slo-ms must be > 0", file=sys.stderr)
        return 2
    if args.memory_budget_mb is not None and args.memory_budget_mb <= 0:
        print("error: --memory-budget-mb must be > 0", file=sys.stderr)
        return 2
    if args.tenant and args.bundle:
        print("error: --tenant fleets load registry models (drop --bundle)",
              file=sys.stderr)
        return 2
    if args.worker_procs is not None and args.no_compile:
        print(
            "error: --worker-procs requires the compiled pipeline "
            "(drop --no-compile)",
            file=sys.stderr,
        )
        return 2
    if args.patterns is not None and args.n is None and not args.bundle:
        print("error: --patterns requires --n (the pruning density)", file=sys.stderr)
        return 2
    if args.stream_delta is not None and args.stream_port is None:
        print("error: --stream-delta requires --stream-port", file=sys.stderr)
        return 2
    try:
        server, served = build_model_server(args)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    server.start()
    try:
        httpd = ServingHTTPServer(server, args.host, args.port)
    except (OSError, OverflowError) as error:
        # EADDRINUSE, or a port outside 0-65535 (OverflowError from
        # socket.bind): exit the same clean way as load errors.
        server.stop()
        print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    stream_server = None
    if args.stream_port is not None:
        from .serving import DEFAULT_DELTA_THRESHOLD, StreamServer

        delta = (
            DEFAULT_DELTA_THRESHOLD
            if args.stream_delta is None else args.stream_delta
        )
        try:
            stream_server = StreamServer(
                server, args.host, args.stream_port, delta_threshold=delta
            ).start()
        except (OSError, OverflowError) as error:
            httpd.server_close()
            server.stop()
            print(
                f"error: cannot bind stream port "
                f"{args.host}:{args.stream_port}: {error}",
                file=sys.stderr,
            )
            return 2
    if args.tenant:
        fleet = ", ".join(
            f"{name}:{row['weight']:g}x" for name, row in
            sorted(server.describe_models().items())
        )
        budget = (
            f"{args.memory_budget_mb:g} MiB budget"
            if args.memory_budget_mb is not None else "unbudgeted"
        )
        print(f"serving fleet [{fleet}] ({budget}) at {httpd.url}")
    else:
        print(
            f"serving {served.name!r} ({served.meta.get('setting', served.source)}) "
            f"at {httpd.url}"
        )
    pipeline = "eager" if args.no_compile else (
        "compiled int8" if args.quantize else "compiled"
    )
    execution = (
        f"worker_procs={args.worker_procs} (shared-memory rings)"
        if args.worker_procs
        else f"workers={args.workers or 1}"
    )
    print(
        f"  batching: max_batch={args.max_batch}, "
        f"max_latency_ms={args.max_latency_ms}, {execution}, "
        f"{pipeline} pipeline (warm)"
    )
    if args.max_queue is not None or args.slo_ms is not None:
        print(
            f"  admission: max_queue={args.max_queue} (429 past the mark), "
            f"slo_ms={args.slo_ms} (503 when blown)"
        )
    if stream_server is not None:
        print(
            f"  streaming: binary protocol on {args.host}:{stream_server.port} "
            f"(delta cache L-inf <= {stream_server.delta_threshold:g})"
        )
    print(
        "  POST /predict /models | DELETE /models/<name> | "
        "GET /stats /metrics /incidents /workers /models /healthz   "
        "(Ctrl-C stops)"
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if stream_server is not None:
            stream_server.stop()
        httpd.server_close()
        server.stop()
        print(server.render_stats())
    return 0


def cmd_chip(args) -> int:
    rows = PAPER_TECH.table_rows()
    print(
        format_table(
            ["component", "area (mm2)", "area %", "power (mW)", "power %"],
            [
                [r["component"], f"{r['area_mm2']:.2f}", f"{r['area_share']:.1%}",
                 f"{r['power_mw']:.1f}", f"{r['power_share']:.1%}"]
                for r in rows
            ],
            title="Table IX (55 nm, 300 MHz, 1 V)",
        )
    )
    print("\nFig. 6 floorplan:")
    print(floorplan_ascii())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pcnn-repro", description="PCNN (DAC 2020) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_args(p):
        p.add_argument(
            "--model", default="vgg16_cifar", choices=sorted(MODEL_REGISTRY),
            help="registered model name",
        )
        p.add_argument("--n", type=int, default=4, help="non-zeros per kernel")
        p.add_argument("--patterns", type=int, default=None, help="pattern budget |P|")
        p.add_argument(
            "--layers", default=None,
            help="per-layer n string, e.g. 2-1-1-... (overrides --n)",
        )

    p_report = sub.add_parser("report", help="compression accounting for one setting")
    add_model_args(p_report)
    p_report.set_defaults(func=cmd_report)

    p_sweep = sub.add_parser("sweep", help="Table I/II style n sweep")
    p_sweep.add_argument(
        "--model", default="vgg16_cifar", choices=sorted(MODEL_REGISTRY)
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_speed = sub.add_parser("speedup", help="architecture speedup / TOPS/W")
    add_model_args(p_speed)
    p_speed.add_argument("--act-density", type=float, default=0.8)
    p_speed.set_defaults(func=cmd_speedup)

    p_prune = sub.add_parser("prune", help="prune a model and write a bundle")
    add_model_args(p_prune)
    p_prune.add_argument("--out", required=True, help="output .npz bundle path")
    p_prune.add_argument(
        "--quantize", type=int, default=None,
        help="quantize values to this many bits (e.g. 8)",
    )
    p_prune.set_defaults(func=cmd_prune)

    p_pred = sub.add_parser(
        "predict", help="batched inference through the runtime engine"
    )
    p_pred.add_argument(
        "--model", default="patternnet", choices=sorted(MODEL_REGISTRY),
        help="registered model name",
    )
    p_pred.add_argument(
        "--n", type=int, default=None,
        help="prune with this many non-zeros per kernel (default: stay dense)",
    )
    p_pred.add_argument("--patterns", type=int, default=None, help="pattern budget |P|")
    p_pred.add_argument(
        "--layers", default=None,
        help="per-layer n string, e.g. 2-1-1-... (overrides --n)",
    )
    p_pred.add_argument("--batch", type=int, default=8, help="input batch size")
    p_pred.add_argument(
        "--micro-batch", type=int, default=None,
        help="split the batch into chunks of this size",
    )
    p_pred.add_argument(
        "--backend", default=None,
        help="force a conv backend (default: auto-select per layer)",
    )
    p_pred.add_argument(
        "--compile", action="store_true",
        help="serve through the compiled pipeline (BN folding, fused "
        "epilogues, float32, buffer arenas)",
    )
    p_pred.add_argument(
        "--quantize", action="store_true",
        help="compile to the int8 execution path (int8 weight/activation "
        "codes, requantizing epilogues; implies --compile)",
    )
    p_pred.add_argument(
        "--tune", choices=("cost", "measure"), default=None,
        help="pick per-layer conv schedules: 'cost' via the analytic "
        "accelerator model, 'measure' via short timed probes persisted "
        "in ~/.cache/repro-tune.json (implies --compile)",
    )
    p_pred.add_argument(
        "--workers", type=int, default=None,
        help="run micro-batches on a thread pool of this size",
    )
    p_pred.add_argument(
        "--no-winograd", action="store_true",
        help="disable the Winograd F(m,3) schedules on the compiled "
        "pipeline (keep every 3x3 conv on im2col)",
    )
    p_pred.add_argument(
        "--no-trace", action="store_true",
        help="disable the trace executor (sets REPRO_TRACE=0: every "
        "call walks per-op dispatch instead of replaying the recorded "
        "thunk list)",
    )
    p_pred.add_argument("--repeat", type=int, default=3, help="timed repetitions")
    p_pred.add_argument("--seed", type=int, default=0, help="input RNG seed")
    p_pred.set_defaults(func=cmd_predict)

    p_serve = sub.add_parser(
        "serve", help="dynamic-batching JSON model server (compiled pipeline)"
    )
    p_serve.add_argument(
        "--model", default="patternnet", choices=sorted(MODEL_REGISTRY),
        help="registered model name (also the bundle's architecture)",
    )
    p_serve.add_argument(
        "--bundle", default=None,
        help="serve a deployment bundle .npz restored into --model "
        "(weights, masks and SPM encodings)",
    )
    p_serve.add_argument(
        "--n", type=int, default=None,
        help="prune with this many non-zeros per kernel before serving "
        "(ignored with --bundle; default: stay dense)",
    )
    p_serve.add_argument("--patterns", type=int, default=None, help="pattern budget |P|")
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool width each coalesced flush fans out over",
    )
    p_serve.add_argument(
        "--worker-procs", type=int, default=None,
        help="serve flushes through this many inference worker *processes* "
        "over shared-memory rings (compiled weights mapped once, "
        "read-only, into every worker); scales past the GIL on "
        "multi-core hosts (incompatible with --no-compile)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=32,
        help="largest coalesced micro-batch (default: 32)",
    )
    p_serve.add_argument(
        "--max-latency-ms", type=float, default=2.0,
        help="how long a flush waits for more requests (default: 2.0)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=None,
        help="admission-control high-water mark: shed requests with "
        "HTTP 429 + Retry-After once this many are queued "
        "(default: unbounded queue)",
    )
    p_serve.add_argument(
        "--slo-ms", type=float, default=None,
        help="per-request latency SLO: flushes fire early to make the "
        "oldest request's deadline, and requests that blew the SLO "
        "while queued are shed with HTTP 503 (default: no SLO)",
    )
    p_serve.add_argument(
        "--tenant", action="append", default=None, metavar="NAME=MODEL[,k=v...]",
        help="serve a multi-tenant fleet: repeatable per-tenant spec "
        "(keys: n, patterns, seed, weight, rate, max-queue, slo-ms), "
        "e.g. --tenant hot=patternnet,weight=3 --tenant "
        "cold=patternnet,n=2; overrides --model/--n",
    )
    p_serve.add_argument(
        "--memory-budget-mb", type=float, default=None,
        help="fleet-wide budget (MiB) for reclaimable resident bytes "
        "(plan caches, arenas, derived GEMM operands): over it, cold "
        "tenants are demoted then evicted LRU-first and re-promoted "
        "warm on their next request (default: unenforced)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8100, help="bind port")
    p_serve.add_argument(
        "--stream-port", type=int, default=None,
        help="also serve the persistent-connection binary streaming "
        "protocol (length-prefixed tensor frames, out-of-order "
        "completion, per-stream delta cache) on this TCP port "
        "(default: HTTP only)",
    )
    p_serve.add_argument(
        "--stream-delta", type=float, default=None,
        help="per-stream near-duplicate threshold (L-infinity, input "
        "scale) for the streaming delta cache: frames within it of "
        "their stream's reference frame answer from the cached result "
        "without touching the batcher; negative disables the cache "
        "(default: 1e-3)",
    )
    p_serve.add_argument(
        "--no-compile", action="store_true",
        help="serve the eager float64 module graph instead of the "
        "compiled pipeline",
    )
    p_serve.add_argument(
        "--quantize", action="store_true",
        help="compile served models to the int8 execution path "
        "(incompatible with --no-compile)",
    )
    p_serve.add_argument(
        "--tune", choices=("cost", "measure"), default=None,
        help="compile served models with per-layer schedule tuning "
        "(measure persists winners in the tuning cache, so warm "
        "restarts skip the measurement; incompatible with --no-compile)",
    )
    p_serve.add_argument(
        "--list-models", action="store_true",
        help="list servable registry models and exit",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_chip = sub.add_parser("chip", help="Table IX breakdown and floorplan")
    p_chip.set_defaults(func=cmd_chip)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
